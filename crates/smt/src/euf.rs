//! DPLL(T) theory solver for equality and uninterpreted functions (EUF).
//!
//! A congruence-closure engine in the style of Nieuwenhuis–Oliveras:
//! union-find over term nodes, a congruence signature table, use-lists for
//! incremental congruence detection, and a proof forest for producing
//! conflict explanations. The engine is *eager*: every asserted equality,
//! disequality and predicate literal is checked as it arrives, so
//! `final_check` never fails.
//!
//! Boolean predicates are handled uniformly by two built-in nodes `⊤` and
//! `⊥` with a built-in disequality: asserting `p(a)` merges the node of
//! `p(a)` with `⊤`, asserting `¬p(a)` merges it with `⊥`. Congruence then
//! yields the expected propagation, e.g. `p(a), a = b, ¬p(b)` drives `⊤`
//! and `⊥` together and conflicts.
//!
//! Term registration happens before solving starts, or — for incremental
//! use — between solve calls while the SAT solver sits at decision level
//! zero (see [`Euf::unseal`]). Assertions are undoable through a trail so
//! the SAT solver can backtrack the theory; a backtrack-to-zero rewinds
//! every non-permanent merge, which is what lets one `Euf` instance serve
//! an arbitrary number of assumption-based checks.

use crate::sat::{Lit, Theory, TheoryConflict, Var};
use crate::term::{FuncId, Term, TermId, TermPool};
use std::collections::HashMap;

/// Index of a node in the congruence graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a SAT variable means to the theory.
#[derive(Clone, Copy, Debug)]
enum Atom {
    /// Equality between two nodes.
    Eq(NodeId, NodeId),
    /// A boolean predicate application; true merges with ⊤, false with ⊥.
    Pred(NodeId),
}

/// Why two nodes were merged.
#[derive(Clone, Copy, Debug)]
enum Reason {
    /// An asserted equality literal (or predicate literal).
    Asserted(Lit),
    /// Congruence of two application nodes with pairwise-equal arguments.
    Congruence(NodeId, NodeId),
    /// Built-in fact (used only for internal bookkeeping; never on edges).
    #[allow(dead_code)]
    Axiom,
}

#[derive(Clone, Copy, Debug)]
struct DisEq {
    a: NodeId,
    b: NodeId,
    /// Literal that asserted the disequality; `None` for the built-in
    /// `⊤ ≠ ⊥`.
    lit: Option<Lit>,
}

enum Undo {
    Union { child: NodeId },
    UsesLen { node: NodeId, len: usize },
    SigInsert { sig: Sig, old: Option<NodeId> },
    DiseqLen { node: NodeId, len: usize },
    ProofSet { node: NodeId, old: Option<(NodeId, Reason)> },
}

type Sig = (FuncId, Vec<NodeId>);

struct NodeData {
    #[allow(dead_code)]
    term: Option<TermId>,
    /// For application nodes, the function and child nodes.
    app: Option<(FuncId, Vec<NodeId>)>,
}

/// The congruence-closure theory.
pub struct Euf {
    nodes: Vec<NodeData>,
    term_node: HashMap<TermId, NodeId>,
    atoms: HashMap<Var, Atom>,
    parent: Vec<NodeId>,
    rank: Vec<u32>,
    uses: Vec<Vec<NodeId>>,
    diseqs: Vec<Vec<DisEq>>,
    sig_table: HashMap<Sig, NodeId>,
    proof: Vec<Option<(NodeId, Reason)>>,
    trail: Vec<Undo>,
    /// `marks[i]` = trail length before the i-th SAT assertion.
    marks: Vec<usize>,
    sealed: bool,
    /// Set when a between-check registration discovered that the permanent
    /// (level-zero) facts are already theory-inconsistent; reported as a
    /// conflict on the next assertion.
    base_conflict: Option<Vec<Lit>>,
    true_node: NodeId,
    false_node: NodeId,
}

impl Default for Euf {
    fn default() -> Self {
        Self::new()
    }
}

impl Euf {
    pub fn new() -> Euf {
        let mut euf = Euf {
            nodes: Vec::new(),
            term_node: HashMap::new(),
            atoms: HashMap::new(),
            parent: Vec::new(),
            rank: Vec::new(),
            uses: Vec::new(),
            diseqs: Vec::new(),
            sig_table: HashMap::new(),
            proof: Vec::new(),
            trail: Vec::new(),
            marks: Vec::new(),
            sealed: false,
            base_conflict: None,
            true_node: NodeId(0),
            false_node: NodeId(0),
        };
        euf.true_node = euf.fresh_node(None, None);
        euf.false_node = euf.fresh_node(None, None);
        let d = DisEq { a: euf.true_node, b: euf.false_node, lit: None };
        euf.diseqs[euf.true_node.index()].push(d);
        euf.diseqs[euf.false_node.index()].push(d);
        euf
    }

    fn fresh_node(&mut self, term: Option<TermId>, app: Option<(FuncId, Vec<NodeId>)>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { term, app });
        self.parent.push(id);
        self.rank.push(0);
        self.uses.push(Vec::new());
        self.diseqs.push(Vec::new());
        self.proof.push(None);
        id
    }

    /// Reopens the theory for node/atom registration between solve calls.
    ///
    /// Safe only while the owning SAT solver sits at decision level zero
    /// (i.e. after [`crate::sat::Solver::backtrack_to_base`]): every merge
    /// still on the trail is then permanent, so signatures computed during
    /// registration can never be invalidated by later backtracking.
    pub fn unseal(&mut self) {
        self.sealed = false;
    }

    /// Registers (recursively) the node for an atom-sorted or predicate
    /// term. Must be called before solving begins, or between solve calls
    /// after [`Euf::unseal`].
    pub fn node(&mut self, pool: &TermPool, t: TermId) -> NodeId {
        assert!(!self.sealed, "EUF nodes must be registered before solving (or after unseal())");
        if let Some(&n) = self.term_node.get(&t) {
            return n;
        }
        let n = match pool.term(t).clone() {
            Term::Var { .. } => self.fresh_node(Some(t), None),
            Term::Apply { func, args } => {
                let child_nodes: Vec<NodeId> = args.iter().map(|&a| self.node(pool, a)).collect();
                let n = self.fresh_node(Some(t), Some((func, child_nodes.clone())));
                for &c in &child_nodes {
                    let rc = self.find(c);
                    self.uses[rc.index()].push(n);
                }
                let sig: Sig = (func, child_nodes.iter().map(|&c| self.find(c)).collect());
                // Hash-consing of terms guarantees no collision before the
                // first solve. Afterwards, permanent level-zero merges can
                // make a new application congruent to an existing one: keep
                // the closure exact by merging the two immediately (this is
                // itself permanent). A conflict here means the level-zero
                // facts are inconsistent; remember it for the next assert.
                if let Some(&v) = self.sig_table.get(&sig) {
                    self.sig_table.insert(sig, n);
                    if self.find(v) != self.find(n) {
                        if let Err(lits) = self.merge(n, v, Reason::Congruence(n, v)) {
                            self.base_conflict = Some(lits);
                        }
                    }
                } else {
                    self.sig_table.insert(sig, n);
                }
                n
            }
            other => panic!("cannot register {other:?} as an EUF node"),
        };
        self.term_node.insert(t, n);
        n
    }

    /// Declares that SAT variable `v` is the equality `a = b`.
    pub fn add_eq_atom(&mut self, v: Var, a: NodeId, b: NodeId) {
        assert!(!self.sealed, "EUF atoms must be registered before solving");
        self.atoms.insert(v, Atom::Eq(a, b));
    }

    /// Declares that SAT variable `v` is the boolean application `n`.
    pub fn add_pred_atom(&mut self, v: Var, n: NodeId) {
        assert!(!self.sealed, "EUF atoms must be registered before solving");
        self.atoms.insert(v, Atom::Pred(n));
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn find(&self, mut n: NodeId) -> NodeId {
        while self.parent[n.index()] != n {
            n = self.parent[n.index()];
        }
        n
    }

    /// Representative of the class of a registered term, for model
    /// construction. Distinct representatives are distinct model values.
    pub fn class_of(&self, t: TermId) -> Option<u32> {
        self.term_node.get(&t).map(|&n| self.find(n).0)
    }

    /// Whether the class of `t` is currently merged with ⊤.
    pub fn is_true_class(&self, t: TermId) -> Option<bool> {
        let n = *self.term_node.get(&t)?;
        let r = self.find(n);
        if r == self.find(self.true_node) {
            Some(true)
        } else if r == self.find(self.false_node) {
            Some(false)
        } else {
            None
        }
    }

    // ---- proof forest ---------------------------------------------------

    /// Makes `n` the root of its proof tree by reversing the path.
    fn proof_reroot(&mut self, n: NodeId) {
        // Collect path n -> root.
        let mut path = vec![n];
        let mut cur = n;
        while let Some((next, _)) = self.proof[cur.index()] {
            path.push(next);
            cur = next;
        }
        // Reverse edges along the path.
        for w in path.windows(2).rev() {
            let (a, b) = (w[0], w[1]);
            let edge = self.proof[a.index()].expect("edge exists");
            self.trail.push(Undo::ProofSet { node: b, old: self.proof[b.index()] });
            self.proof[b.index()] = Some((a, edge.1));
        }
        self.trail.push(Undo::ProofSet { node: n, old: self.proof[n.index()] });
        self.proof[n.index()] = None;
    }

    /// Nearest common ancestor of `a` and `b` in the proof forest.
    fn proof_nca(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut seen = Vec::new();
        let mut cur = a;
        loop {
            seen.push(cur);
            match self.proof[cur.index()] {
                Some((next, _)) => cur = next,
                None => break,
            }
        }
        let mut cur = b;
        loop {
            if seen.contains(&cur) {
                return cur;
            }
            match self.proof[cur.index()] {
                Some((next, _)) => cur = next,
                None => panic!("explain: nodes not connected in proof forest"),
            }
        }
    }

    /// Collects the asserted literals explaining why `a` and `b` are equal.
    fn explain(&self, a: NodeId, b: NodeId, out: &mut Vec<Lit>) {
        if a == b {
            return;
        }
        let nca = self.proof_nca(a, b);
        self.explain_to_ancestor(a, nca, out);
        self.explain_to_ancestor(b, nca, out);
    }

    fn explain_to_ancestor(&self, mut n: NodeId, ancestor: NodeId, out: &mut Vec<Lit>) {
        while n != ancestor {
            let (next, reason) = self.proof[n.index()].expect("path to ancestor exists");
            match reason {
                Reason::Asserted(l) => out.push(l),
                Reason::Congruence(u, v) => {
                    let (fu, au) = self.nodes[u.index()].app.clone().expect("apply node");
                    let (fv, av) = self.nodes[v.index()].app.clone().expect("apply node");
                    debug_assert_eq!(fu, fv);
                    for (x, y) in au.iter().zip(av.iter()) {
                        self.explain(*x, *y, out);
                    }
                }
                Reason::Axiom => {}
            }
            n = next;
        }
    }

    // ---- merging --------------------------------------------------------

    /// Asserts `a = b` for `reason`; returns the conflict literal set on
    /// inconsistency.
    fn merge(&mut self, a: NodeId, b: NodeId, reason: Reason) -> Result<(), Vec<Lit>> {
        let mut pending = vec![(a, b, reason)];
        while let Some((a, b, reason)) = pending.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            // Orient by rank: merge the lower-rank class into the other.
            let (child_rep, parent_rep) =
                if self.rank[ra.index()] <= self.rank[rb.index()] { (ra, rb) } else { (rb, ra) };
            // Conflict check: any disequality between the two classes?
            let conflict_diseq = self.diseqs[child_rep.index()].iter().copied().find(|d| {
                let da = self.find(d.a);
                let db = self.find(d.b);
                (da == ra && db == rb) || (da == rb && db == ra)
            });
            if let Some(d) = conflict_diseq {
                let mut lits = Vec::new();
                if let Some(l) = d.lit {
                    lits.push(l);
                }
                // Explain the merge about to happen: d.a ~ a(=b) ~ d.b.
                // Record the pending edge first so the explanation sees it.
                self.proof_reroot(a);
                self.trail.push(Undo::ProofSet { node: a, old: self.proof[a.index()] });
                self.proof[a.index()] = Some((b, reason));
                self.explain(d.a, d.b, &mut lits);
                lits.sort();
                lits.dedup();
                return Err(lits);
            }
            // Record the proof edge between the *original* nodes.
            self.proof_reroot(a);
            self.trail.push(Undo::ProofSet { node: a, old: self.proof[a.index()] });
            self.proof[a.index()] = Some((b, reason));

            // Union.
            self.trail.push(Undo::Union { child: child_rep });
            self.parent[child_rep.index()] = parent_rep;
            if self.rank[child_rep.index()] == self.rank[parent_rep.index()] {
                // Rank only grows; undone implicitly by Union (rank is a
                // heuristic — leaving it monotone preserves correctness).
                self.rank[parent_rep.index()] += 1;
            }

            // Move disequalities of the child class up to the parent.
            if !self.diseqs[child_rep.index()].is_empty() {
                self.trail.push(Undo::DiseqLen {
                    node: parent_rep,
                    len: self.diseqs[parent_rep.index()].len(),
                });
                let moved = self.diseqs[child_rep.index()].clone();
                self.diseqs[parent_rep.index()].extend(moved);
            }

            // Congruence: rehash every application that uses the child class.
            let used = self.uses[child_rep.index()].clone();
            self.trail
                .push(Undo::UsesLen { node: parent_rep, len: self.uses[parent_rep.index()].len() });
            for u in used {
                let (f, args) = self.nodes[u.index()].app.clone().expect("use-list holds applies");
                let sig: Sig = (f, args.iter().map(|&c| self.find(c)).collect());
                match self.sig_table.get(&sig) {
                    Some(&v) if self.find(v) != self.find(u) => {
                        pending.push((u, v, Reason::Congruence(u, v)));
                    }
                    Some(_) => {}
                    None => {
                        self.trail.push(Undo::SigInsert { sig: sig.clone(), old: None });
                        self.sig_table.insert(sig, u);
                    }
                }
                self.uses[parent_rep.index()].push(u);
            }
        }
        Ok(())
    }

    fn assert_diseq(&mut self, a: NodeId, b: NodeId, lit: Lit) -> Result<(), Vec<Lit>> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            let mut lits = vec![lit];
            self.explain(a, b, &mut lits);
            lits.sort();
            lits.dedup();
            return Err(lits);
        }
        let d = DisEq { a, b, lit: Some(lit) };
        self.trail.push(Undo::DiseqLen { node: ra, len: self.diseqs[ra.index()].len() });
        self.diseqs[ra.index()].push(d);
        self.trail.push(Undo::DiseqLen { node: rb, len: self.diseqs[rb.index()].len() });
        self.diseqs[rb.index()].push(d);
        Ok(())
    }

    fn undo_to(&mut self, len: usize) {
        while self.trail.len() > len {
            match self.trail.pop().expect("trail non-empty") {
                Undo::Union { child } => {
                    self.parent[child.index()] = child;
                }
                Undo::UsesLen { node, len } => {
                    self.uses[node.index()].truncate(len);
                }
                Undo::SigInsert { sig, old } => match old {
                    Some(n) => {
                        self.sig_table.insert(sig, n);
                    }
                    None => {
                        self.sig_table.remove(&sig);
                    }
                },
                Undo::DiseqLen { node, len } => {
                    self.diseqs[node.index()].truncate(len);
                }
                Undo::ProofSet { node, old } => {
                    self.proof[node.index()] = old;
                }
            }
        }
    }
}

impl Theory for Euf {
    fn on_assert(&mut self, lit: Lit) -> Result<(), TheoryConflict> {
        self.sealed = true;
        self.marks.push(self.trail.len());
        if let Some(base) = &self.base_conflict {
            // The permanent facts are already inconsistent; surface the
            // stored explanation. Including the trigger literal keeps the
            // conflict non-empty at the current decision level, which is
            // all conflict analysis needs to drive the search to UNSAT.
            let mut lits = base.clone();
            if !lits.contains(&lit) {
                lits.push(lit);
            }
            return Err(TheoryConflict { lits });
        }
        let Some(&atom) = self.atoms.get(&lit.var()) else {
            return Ok(());
        };
        let result = match (atom, lit.is_neg()) {
            (Atom::Eq(a, b), false) => self.merge(a, b, Reason::Asserted(lit)),
            (Atom::Eq(a, b), true) => self.assert_diseq(a, b, lit),
            (Atom::Pred(n), false) => {
                let t = self.true_node;
                self.merge(n, t, Reason::Asserted(lit))
            }
            (Atom::Pred(n), true) => {
                let f = self.false_node;
                self.merge(n, f, Reason::Asserted(lit))
            }
        };
        result.map_err(|mut lits| {
            if !lits.contains(&lit) {
                lits.push(lit);
            }
            debug_assert!(lits.iter().all(|l| {
                // Every conflict literal must map back to a known atom (or
                // be the trigger literal itself).
                self.atoms.contains_key(&l.var()) || *l == lit
            }));
            TheoryConflict { lits }
        })
    }

    fn on_backtrack(&mut self, new_len: usize) {
        if new_len < self.marks.len() {
            let target = self.marks[new_len];
            self.undo_to(target);
            self.marks.truncate(new_len);
        }
    }

    fn final_check(&mut self) -> Result<(), TheoryConflict> {
        // Eager checking means the assignment is already theory-consistent.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatResult, Solver};
    use crate::sorts::{Sort, SortStore};

    /// Harness wiring a `TermPool`, `Euf` and `Solver` together by hand
    /// (the real plumbing lives in `crate::solver`; these tests target the
    /// theory in isolation).
    struct Harness {
        pool: TermPool,
        euf: Euf,
        solver: Solver,
        sort: Sort,
    }

    impl Harness {
        fn new() -> Harness {
            let mut sorts = SortStore::new();
            let sort = sorts.declare("U");
            Harness { pool: TermPool::new(), euf: Euf::new(), solver: Solver::new(), sort }
        }

        fn const_(&mut self, name: &str) -> TermId {
            self.pool.var(name, self.sort)
        }

        /// Creates the SAT atom for `a = b` and returns its literal.
        fn eq_lit(&mut self, a: TermId, b: TermId) -> Lit {
            let na = self.euf.node(&self.pool, a);
            let nb = self.euf.node(&self.pool, b);
            let v = self.solver.new_var();
            self.euf.add_eq_atom(v, na, nb);
            Lit::pos(v)
        }

        fn pred_lit(&mut self, f: FuncId, args: &[TermId]) -> Lit {
            let t = self.pool.apply(f, args);
            let n = self.euf.node(&self.pool, t);
            let v = self.solver.new_var();
            self.euf.add_pred_atom(v, n);
            Lit::pos(v)
        }

        fn assert_true(&mut self, l: Lit) {
            assert!(self.solver.add_clause(&[l]));
        }

        fn check(&mut self) -> SatResult {
            self.solver.solve(&mut self.euf)
        }
    }

    #[test]
    fn transitivity_conflict() {
        // a=b, b=c, a≠c is UNSAT.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let c = h.const_("c");
        let ab = h.eq_lit(a, b);
        let bc = h.eq_lit(b, c);
        let ac = h.eq_lit(a, c);
        h.assert_true(ab);
        h.assert_true(bc);
        h.assert_true(!ac);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn transitivity_sat_without_diseq() {
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let c = h.const_("c");
        let ab = h.eq_lit(a, b);
        let bc = h.eq_lit(b, c);
        h.assert_true(ab);
        h.assert_true(bc);
        assert_eq!(h.check(), SatResult::Sat);
        let na = h.euf.class_of(a).unwrap();
        let nc = h.euf.class_of(c).unwrap();
        assert_eq!(na, nc, "a and c must share a class in the model");
    }

    #[test]
    fn congruence_of_predicates() {
        // p(a), a=b, ¬p(b) is UNSAT by congruence.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let p = h.pool.declare_fun("p", &[h.sort], Sort::Bool);
        let pa = h.pred_lit(p, &[a]);
        let pb = h.pred_lit(p, &[b]);
        let ab = h.eq_lit(a, b);
        h.assert_true(pa);
        h.assert_true(ab);
        h.assert_true(!pb);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn congruence_of_functions() {
        // f(a)=x, f(b)=y, a=b, x≠y is UNSAT.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let f = h.pool.declare_fun("f", &[h.sort], h.sort);
        let fa = h.pool.apply(f, &[a]);
        let fb = h.pool.apply(f, &[b]);
        let ab = h.eq_lit(a, b);
        let fafb = h.eq_lit(fa, fb);
        h.assert_true(ab);
        h.assert_true(!fafb);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn nested_congruence() {
        // a=b ⟹ f(f(a)) = f(f(b)).
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let f = h.pool.declare_fun("f", &[h.sort], h.sort);
        let fa = h.pool.apply(f, &[a]);
        let fb = h.pool.apply(f, &[b]);
        let ffa = h.pool.apply(f, &[fa]);
        let ffb = h.pool.apply(f, &[fb]);
        let ab = h.eq_lit(a, b);
        let ff = h.eq_lit(ffa, ffb);
        h.assert_true(ab);
        h.assert_true(!ff);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn solver_can_flip_equality_to_satisfy() {
        // (a=b ∨ a=c), p(a), ¬p(b): solver must pick a=c.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let c = h.const_("c");
        let p = h.pool.declare_fun("p", &[h.sort], Sort::Bool);
        let pa = h.pred_lit(p, &[a]);
        let pb = h.pred_lit(p, &[b]);
        let ab = h.eq_lit(a, b);
        let ac = h.eq_lit(a, c);
        h.solver.add_clause(&[ab, ac]);
        h.assert_true(pa);
        h.assert_true(!pb);
        assert_eq!(h.check(), SatResult::Sat);
        assert!(h.solver.model_value(ac.var()), "a=c must hold");
        assert!(!h.solver.model_value(ab.var()), "a=b must not hold");
    }

    #[test]
    fn backtracking_across_classes() {
        // Force the solver to try an inconsistent branch first, then
        // backtrack the theory state and succeed on the other branch.
        let mut h = Harness::new();
        let xs: Vec<TermId> = (0..6).map(|i| h.const_(&format!("x{i}"))).collect();
        // Chain x0=x1=...=x5 optionally, with x0≠x5 forced.
        let chain: Vec<Lit> = (0..5).map(|i| h.eq_lit(xs[i], xs[i + 1])).collect();
        let ends = h.eq_lit(xs[0], xs[5]);
        h.assert_true(!ends);
        // At least 4 of the chain links must hold — SAT (break one link).
        for w in chain.windows(2) {
            h.solver.add_clause(w); // pairwise ORs keep most links on
        }
        assert_eq!(h.check(), SatResult::Sat);
        // Not all 5 links can hold simultaneously.
        let all_on = chain.iter().all(|l| h.solver.model_value(l.var()));
        assert!(!all_on, "the full chain would contradict x0≠x5");
    }

    #[test]
    fn diseq_then_eq_conflict_order() {
        // Assert a≠b before a=b; conflict must still be found.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let ab1 = h.eq_lit(a, b);
        let ab2 = h.eq_lit(b, a); // distinct atom, same semantics
        h.assert_true(!ab1);
        h.assert_true(ab2);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn two_arg_congruence() {
        // g(a, c) ≠ g(b, c) with a=b is UNSAT.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let c = h.const_("c");
        let g = h.pool.declare_fun("g", &[h.sort, h.sort], h.sort);
        let gac = h.pool.apply(g, &[a, c]);
        let gbc = h.pool.apply(g, &[b, c]);
        let ab = h.eq_lit(a, b);
        let gg = h.eq_lit(gac, gbc);
        h.assert_true(ab);
        h.assert_true(!gg);
        assert_eq!(h.check(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_rewind_theory_state() {
        // a = b and p(a) are permanent; ¬p(b) is only *assumed*. The first
        // check is UNSAT under the assumption, the second (assumption-free)
        // check must succeed on the very same Euf instance — i.e. the
        // congruence state rewinds fully between calls.
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let p = h.pool.declare_fun("p", &[h.sort], Sort::Bool);
        let pa = h.pred_lit(p, &[a]);
        let pb = h.pred_lit(p, &[b]);
        let ab = h.eq_lit(a, b);
        h.assert_true(pa);
        h.assert_true(ab);
        for _ in 0..3 {
            assert_eq!(h.solver.solve_with_assumptions(&[!pb], &mut h.euf), SatResult::Unsat);
            assert_eq!(h.solver.solve_with_assumptions(&[], &mut h.euf), SatResult::Sat);
            assert!(h.solver.model_value(pb.var()), "congruence forces p(b)");
        }
    }

    #[test]
    fn model_classes_respect_diseq() {
        let mut h = Harness::new();
        let a = h.const_("a");
        let b = h.const_("b");
        let ab = h.eq_lit(a, b);
        h.assert_true(!ab);
        assert_eq!(h.check(), SatResult::Sat);
        assert_ne!(h.euf.class_of(a), h.euf.class_of(b));
    }
}
