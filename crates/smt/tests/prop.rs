//! Property-based tests for the SMT solver.
//!
//! The central invariant: whenever `check()` reports SAT, evaluating every
//! assertion under the returned model yields true; whenever it reports
//! UNSAT on a formula that a brute-force enumerator can decide, the
//! enumerator agrees.

use proptest::prelude::*;
use vmn_smt::{Context, SatResult, Sort, TermId};

/// A tiny recursive formula AST that proptest can generate, later lowered
/// into a `Context`.
#[derive(Clone, Debug)]
enum F {
    Var(u8),
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Iff(Box<F>, Box<F>),
    Implies(Box<F>, Box<F>),
    /// Equality of two of four 4-bit bit-vector variables.
    BvEq(u8, u8),
    /// `bv[a] <= bv[b]`.
    BvLe(u8, u8),
    /// Equality of two of four atom constants.
    AtomEq(u8, u8),
}

fn formula() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(F::Var),
        (0u8..4, 0u8..4).prop_map(|(a, b)| F::BvEq(a, b)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| F::BvLe(a, b)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| F::AtomEq(a, b)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Iff(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| F::Implies(Box::new(a), Box::new(b))),
        ]
    })
}

struct Env {
    bools: Vec<TermId>,
    bvs: Vec<TermId>,
    atoms: Vec<TermId>,
}

fn build(ctx: &mut Context, f: &F, env: &Env) -> TermId {
    match f {
        F::Var(i) => env.bools[*i as usize],
        F::Not(a) => {
            let t = build(ctx, a, env);
            ctx.not(t)
        }
        F::And(a, b) => {
            let (x, y) = (build(ctx, a, env), build(ctx, b, env));
            ctx.and(&[x, y])
        }
        F::Or(a, b) => {
            let (x, y) = (build(ctx, a, env), build(ctx, b, env));
            ctx.or(&[x, y])
        }
        F::Iff(a, b) => {
            let (x, y) = (build(ctx, a, env), build(ctx, b, env));
            ctx.iff(x, y)
        }
        F::Implies(a, b) => {
            let (x, y) = (build(ctx, a, env), build(ctx, b, env));
            ctx.implies(x, y)
        }
        F::BvEq(a, b) => ctx.eq(env.bvs[*a as usize], env.bvs[*b as usize]),
        F::BvLe(a, b) => ctx.bv_ule(env.bvs[*a as usize], env.bvs[*b as usize]),
        F::AtomEq(a, b) => ctx.eq(env.atoms[*a as usize], env.atoms[*b as usize]),
    }
}

/// Reference evaluation of a formula under concrete assignments.
fn eval_ref(f: &F, bools: &[bool; 4], bvs: &[u8; 4], atoms: &[u8; 4]) -> bool {
    match f {
        F::Var(i) => bools[*i as usize],
        F::Not(a) => !eval_ref(a, bools, bvs, atoms),
        F::And(a, b) => eval_ref(a, bools, bvs, atoms) && eval_ref(b, bools, bvs, atoms),
        F::Or(a, b) => eval_ref(a, bools, bvs, atoms) || eval_ref(b, bools, bvs, atoms),
        F::Iff(a, b) => eval_ref(a, bools, bvs, atoms) == eval_ref(b, bools, bvs, atoms),
        F::Implies(a, b) => !eval_ref(a, bools, bvs, atoms) || eval_ref(b, bools, bvs, atoms),
        F::BvEq(a, b) => bvs[*a as usize] == bvs[*b as usize],
        F::BvLe(a, b) => bvs[*a as usize] <= bvs[*b as usize],
        F::AtomEq(a, b) => atoms[*a as usize] == atoms[*b as usize],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SAT answers come with models that really satisfy the assertion.
    #[test]
    fn models_satisfy_assertions(f in formula()) {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let env = Env {
            bools: (0..4).map(|i| ctx.fresh_const(format!("b{i}"), Sort::Bool)).collect(),
            bvs: (0..4).map(|i| ctx.fresh_const(format!("v{i}"), Sort::bitvec(4))).collect(),
            atoms: (0..4).map(|i| ctx.fresh_const(format!("a{i}"), u)).collect(),
        };
        let t = build(&mut ctx, &f, &env);
        ctx.assert(t);
        if ctx.check() == SatResult::Sat {
            prop_assert!(ctx.eval_bool(t), "model does not satisfy the assertion: {f:?}");
        }
    }

    /// The solver agrees with brute-force enumeration over small domains.
    ///
    /// Atom variables range over a 4-value domain for enumeration; this is
    /// sufficient because a formula over 4 atom constants is satisfiable
    /// over some domain iff it is satisfiable over a 4-element domain.
    #[test]
    fn agrees_with_bruteforce(f in formula()) {
        let mut ctx = Context::new();
        let u = ctx.sorts_mut().declare("U");
        let env = Env {
            bools: (0..4).map(|i| ctx.fresh_const(format!("b{i}"), Sort::Bool)).collect(),
            bvs: (0..4).map(|i| ctx.fresh_const(format!("v{i}"), Sort::bitvec(4))).collect(),
            atoms: (0..4).map(|i| ctx.fresh_const(format!("a{i}"), u)).collect(),
        };
        let t = build(&mut ctx, &f, &env);
        ctx.assert(t);
        let solver_sat = ctx.check() == SatResult::Sat;

        // Brute force: booleans 2^4, bit-vectors constrained to 0..4 (only
        // ordering/equality matter, and 4 values can realise every
        // order-type of 4 variables), atoms over a 4-value domain.
        let mut brute_sat = false;
        'outer: for bm in 0u32..16 {
            let bools = [bm & 1 != 0, bm & 2 != 0, bm & 4 != 0, bm & 8 != 0];
            for vm in 0u32..256 {
                let bvs = [
                    (vm & 3) as u8,
                    ((vm >> 2) & 3) as u8,
                    ((vm >> 4) & 3) as u8,
                    ((vm >> 6) & 3) as u8,
                ];
                for am in 0u32..256 {
                    let atoms = [
                        (am & 3) as u8,
                        ((am >> 2) & 3) as u8,
                        ((am >> 4) & 3) as u8,
                        ((am >> 6) & 3) as u8,
                    ];
                    if eval_ref(&f, &bools, &bvs, &atoms) {
                        brute_sat = true;
                        break 'outer;
                    }
                }
            }
        }
        prop_assert_eq!(solver_sat, brute_sat, "solver disagrees with brute force on {:?}", f);
    }
}

#[test]
fn deep_nesting_does_not_blow_up() {
    // A linear chain of implications with a contradiction at the end.
    let mut ctx = Context::new();
    let vars: Vec<TermId> =
        (0..200).map(|i| ctx.fresh_const(format!("x{i}"), Sort::Bool)).collect();
    ctx.assert(vars[0]);
    for w in vars.windows(2) {
        let imp = ctx.implies(w[0], w[1]);
        ctx.assert(imp);
    }
    let last = *vars.last().unwrap();
    let nl = ctx.not(last);
    ctx.assert(nl);
    assert_eq!(ctx.check(), SatResult::Unsat);
}

#[test]
fn wide_equality_network() {
    // A ring of 64 atom constants forced equal, with one disequality.
    let mut ctx = Context::new();
    let u = ctx.sorts_mut().declare("U");
    let xs: Vec<TermId> = (0..64).map(|i| ctx.fresh_const(format!("n{i}"), u)).collect();
    for w in xs.windows(2) {
        let e = ctx.eq(w[0], w[1]);
        ctx.assert(e);
    }
    let e = ctx.eq(xs[0], xs[63]);
    let ne = ctx.not(e);
    ctx.assert(ne);
    assert_eq!(ctx.check(), SatResult::Unsat);
}
