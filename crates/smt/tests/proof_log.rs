//! Proof logging must survive every clause-database mutation the
//! incremental engine performs: learnt-clause GC (`reduce_db`), arena
//! compaction, cone-scoped forgetting and search-state resets. Each test
//! exercises one mutation and then demands that a *subsequent* UNSAT
//! verdict still carries a certificate the trusted checker accepts —
//! i.e. the log's deletions and additions stayed consistent with the
//! live clause set.

use vmn_check::{check_bundle, BundleSummary, CertificateBundle, Outcome};
use vmn_smt::sat::{NoTheory, SatResult, Solver};
use vmn_smt::{Lit, Var};

/// A pigeonhole instance (`holes + 1` pigeons into `holes` holes,
/// unsatisfiable) guarded by a fresh variable `g`: every clause gets
/// `¬g` appended, so the instance is active only under the assumption
/// `g`. Refuting it forces real clause learning.
fn guarded_php(s: &mut Solver, holes: usize) -> Var {
    let g = s.new_var();
    let pigeons = holes + 1;
    let vars: Vec<Vec<Var>> =
        (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
    for p in 0..pigeons {
        let mut cl: Vec<Lit> = (0..holes).map(|h| Lit::pos(vars[p][h])).collect();
        cl.push(Lit::neg(g));
        s.add_clause(&cl);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[Lit::neg(vars[p1][h]), Lit::neg(vars[p2][h]), Lit::neg(g)]);
            }
        }
    }
    g
}

/// Exports the solver's full proof log as a one-session bundle and runs
/// the trusted checker on it, panicking on rejection.
fn validate(s: &Solver, label: &str) -> BundleSummary {
    let session = s.proof_session(0).expect("proof logging must be enabled");
    let bundle = CertificateBundle { label: label.to_string(), sessions: vec![session] };
    check_bundle(&bundle)
        .unwrap_or_else(|e| panic!("checker rejected the {label} certificate: {e}"))
}

#[test]
fn proof_survives_reduce_db_and_compaction() {
    // A tiny learnt budget on a long incremental session: reduce_db keeps
    // deleting lemmas and the automatic arena-compaction trigger fires
    // mid-search — all of it must be mirrored into the proof log.
    let mut s = Solver::new();
    s.enable_proof();
    s.set_max_learnts(30.0);
    let guards: Vec<Var> = (0..6).map(|_| guarded_php(&mut s, 5)).collect();
    for (i, &g) in guards.iter().enumerate() {
        let mut assumptions = vec![Lit::pos(g)];
        assumptions.extend(guards.iter().take(i).map(|&h| Lit::neg(h)));
        assert_eq!(s.solve_pure_assuming(&assumptions), SatResult::Unsat, "php {i}");
    }
    assert!(s.stats().deleted_clauses > 0, "low budget must force deletions");
    assert!(s.stats().arena_compactions >= 1, "the GC trigger must have fired");

    // The subsequent verdict after all that churn must still certify.
    let g0 = guards[0];
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g0)]), SatResult::Unsat);
    let summary = validate(&s, "reduce-db");
    assert_eq!(summary.unsat_checks, 7, "six sweep checks plus the post-GC one");
    assert_eq!(summary.sat_checks, 0);
}

#[test]
fn proof_survives_explicit_compaction() {
    // compact_arena renumbers every ClauseRef; proof ids must not move.
    let mut s = Solver::new();
    s.enable_proof();
    s.set_max_learnts(20.0);
    let g = guarded_php(&mut s, 5);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    s.backtrack_to_base(&mut NoTheory);
    s.forget_learnts_with(&[Lit::pos(g)]); // wrong polarity: deletes nothing
    s.compact_arena();
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    let summary = validate(&s, "explicit-compaction");
    assert_eq!(summary.unsat_checks, 2);
}

#[test]
fn proof_survives_cone_forgetting() {
    // Forgetting a deselected sub-query's cone deletes lemmas that never
    // mention its guard; every one of those deletions must be logged, and
    // the next refutation must re-derive whatever it needs on the record.
    let mut s = Solver::new();
    s.enable_proof();
    s.set_open_cone(Solver::cone_bit(1));
    let g1 = guarded_php(&mut s, 5);
    s.set_open_cone(Solver::cone_bit(2));
    let g2 = guarded_php(&mut s, 4);
    s.set_open_cone(0);

    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g1), Lit::neg(g2)]), SatResult::Unsat);
    let deleted_before = s.stats().deleted_clauses;
    s.backtrack_to_base(&mut NoTheory);
    s.forget_learnts_in_cones(Solver::cone_bit(1), &[Lit::neg(g1)]);
    assert!(s.stats().deleted_clauses > deleted_before, "cone forget must delete lemmas");

    // Subsequent UNSAT verdicts — both for the surviving cone and for the
    // forgotten one (forcing re-derivation) — must certify.
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g2), Lit::neg(g1)]), SatResult::Unsat);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g1), Lit::neg(g2)]), SatResult::Unsat);
    let summary = validate(&s, "cone-forget");
    assert_eq!(summary.unsat_checks, 3);
}

#[test]
fn proof_survives_search_reset() {
    // reset_search_state wipes activities and phases but keeps the clause
    // DB; the proof log must be untouched and the next verdict checkable.
    let mut s = Solver::new();
    s.enable_proof();
    let g = guarded_php(&mut s, 5);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    let steps_before = s.proof().unwrap().num_steps();
    s.backtrack_to_base(&mut NoTheory);
    s.reset_search_state();
    assert_eq!(s.proof().unwrap().num_steps(), steps_before, "reset must not touch the log");
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    let summary = validate(&s, "search-reset");
    assert_eq!(summary.unsat_checks, 2);
}

#[test]
fn sat_verdicts_carry_replayable_models() {
    let mut s = Solver::new();
    s.enable_proof();
    let g = guarded_php(&mut s, 4);
    assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
    let summary = validate(&s, "sat-models");
    assert_eq!(summary.sat_checks, 2);
    assert_eq!(summary.unsat_checks, 1);
}

#[test]
fn per_check_slices_validate_independently() {
    // The session pool exports one slice per sub-query: the full shared
    // step log plus only that sub-query's check records. Every slice must
    // validate on its own.
    let mut s = Solver::new();
    s.enable_proof();
    let g1 = guarded_php(&mut s, 4);
    let g2 = guarded_php(&mut s, 4);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g1), Lit::neg(g2)]), SatResult::Unsat);
    let watermark = s.proof().unwrap().num_checks();
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g2), Lit::neg(g1)]), SatResult::Unsat);
    assert_eq!(s.solve_pure_assuming(&[Lit::neg(g1), Lit::neg(g2)]), SatResult::Sat);

    let tail = s.proof_session(watermark).expect("proof logging enabled");
    assert_eq!(tail.checks.len(), 2, "only the post-watermark checks");
    let bundle = CertificateBundle { label: "slice".to_string(), sessions: vec![tail] };
    let summary = check_bundle(&bundle).expect("the slice must validate on its own");
    assert_eq!(summary.unsat_checks, 1);
    assert_eq!(summary.sat_checks, 1);
}

#[test]
fn mutated_certificate_is_rejected() {
    // Flip the assumption polarity of a recorded UNSAT check: the claim
    // becomes "unsatisfiable under ¬g", which is false (the guarded
    // instance is satisfiable with the guard off), so the checker must
    // refuse the derivation.
    let mut s = Solver::new();
    s.enable_proof();
    let g = guarded_php(&mut s, 4);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    let mut session = s.proof_session(0).unwrap();
    validate(&s, "pre-mutation");
    for check in &mut session.checks {
        if matches!(check.outcome, Outcome::Unsat) {
            for a in &mut check.assumptions {
                *a = -*a;
            }
        }
    }
    let bundle = CertificateBundle { label: "mutated".to_string(), sessions: vec![session] };
    assert!(check_bundle(&bundle).is_err(), "flipped assumptions must be rejected");
}

#[test]
fn euf_theory_conflicts_certify_as_axioms() {
    // A congruence-closure refutation: the theory conflict is not
    // derivable from the CNF alone, so the engine logs it as an axiom
    // and the checker treats it as part of the input. The surrounding
    // propositional derivation must still be replayable.
    use vmn_smt::{Context, SatResult as CtxResult, Sort};
    let mut ctx = Context::new();
    ctx.enable_proofs();
    let pkt = ctx.sorts_mut().declare("Packet");
    let p = ctx.fresh_const("p", pkt);
    let q = ctx.fresh_const("q", pkt);
    let malicious = ctx.declare_fun("malicious?", &[pkt], Sort::BOOL);
    let mp = ctx.apply(malicious, &[p]);
    let mq = ctx.apply(malicious, &[q]);
    let same = ctx.eq(p, q);
    let not_mq = ctx.not(mq);
    ctx.assert(same);
    ctx.assert(mp);
    ctx.assert(not_mq);
    assert_eq!(ctx.check(), CtxResult::Unsat);

    let session = ctx.proof_session(0).expect("proofs enabled on the context");
    assert!(
        session.steps.iter().any(|st| matches!(st, vmn_check::ProofStep::Axiom { .. })),
        "the congruence conflict must appear as a logged axiom"
    );
    let bundle = CertificateBundle { label: "euf".to_string(), sessions: vec![session] };
    let summary = check_bundle(&bundle).expect("EUF certificate must check");
    assert_eq!(summary.unsat_checks, 1);
}

#[test]
fn certificates_roundtrip_through_text_format() {
    let mut s = Solver::new();
    s.enable_proof();
    s.set_max_learnts(20.0);
    let g = guarded_php(&mut s, 5);
    assert_eq!(s.solve_pure_assuming(&[Lit::pos(g)]), SatResult::Unsat);
    assert_eq!(s.solve_pure_assuming(&[Lit::neg(g)]), SatResult::Sat);
    let bundle = CertificateBundle {
        label: "roundtrip".to_string(),
        sessions: vec![s.proof_session(0).unwrap()],
    };
    let text = vmn_check::write_bundles(std::slice::from_ref(&bundle));
    let parsed = vmn_check::parse_bundles(&text).expect("engine output must parse");
    assert_eq!(parsed.len(), 1);
    let summary = check_bundle(&parsed[0]).expect("parsed certificate must check");
    assert_eq!(summary.unsat_checks, 1);
    assert_eq!(summary.sat_checks, 1);
}
