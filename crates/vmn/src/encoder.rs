//! The VMN encoder: network + middlebox models + oracles + negated
//! invariant → one SMT formula.
//!
//! The encoding unrolls a bounded trace of `K` steps. Each step carries at
//! most one event, chosen by the solver (this *is* the paper's scheduling
//! oracle — modelled "using variables"):
//!
//! * **HostSend** — a live host emits a fresh packet with symbolic header
//!   fields, constrained to be well-formed (source address owned by the
//!   host, data origin = source, ephemeral source port);
//! * **MboxProcess** — a live middlebox processes the *oldest* packet
//!   pending at it (per-middlebox FIFO, the ordering constraint of §3)
//!   according to its model: guards are evaluated first-match, actions are
//!   executed symbolically, and an output packet may be emitted;
//! * **Idle** — nothing happens (lets shorter traces embed in K steps).
//!
//! Every emitted packet is *delivered atomically* by the network
//! pseudo-node Ω: the destination terminal is a precomputed function of
//! (emitting terminal, destination-address equivalence class), compiled
//! from the transfer function of `vmn-net` into interval tests. Failures
//! are fail-stop per scenario: failed terminals neither receive nor act,
//! and routing has already re-converged (backup rules) — the paper's
//! per-failure-condition transfer functions.
//!
//! ## Incremental failure scenarios and invariants
//!
//! One [`Encoded`] instance serves *every* failure scenario of a sweep —
//! and, through the session layer, every invariant sharing its node set
//! and trace bound. The skeleton built by [`encode_skeleton`] — step
//! semantics, FIFO ordering, middlebox models, history formulas — depends
//! on neither. Everything a scenario changes (which terminals are alive,
//! where the re-converged routing delivers) is asserted under a
//! per-scenario *activation literal* by [`Encoded::scenario_literal`];
//! each invariant's violation formula is likewise guarded by a
//! per-invariant literal ([`Encoded::invariant_literal`]), and one
//! [`Encoded::check_invariant_scenario`] (an assumption-based solver
//! call) decides any registered pair. The solver, its learnt clauses and
//! the bit-blasting caches persist across the whole session, so each
//! check pays only for what distinguishes it from the checks before it.
//!
//! Middlebox state is never materialised: membership queries compile to
//! *history formulas* — "some earlier step processed a matching insert" —
//! exactly mirroring the paper's axioms like
//! `established(flow(p)) ⟺ ♦(rcv(fw, p′) ∧ acl(...) ∧ flow(p′) = flow(p))`.
//! The ♦-unrollings are produced by the `vmn-logic` grounder.
//!
//! Classification oracles (`malicious?` …) become free boolean variables
//! per (oracle, step), optionally constrained by the model's
//! mutual-exclusion groups; finding a satisfying assignment means finding
//! oracle behaviour + schedule + packet contents that violate the
//! invariant.

use crate::invariant::Invariant;
use crate::network::Network;
use std::collections::HashMap;
use vmn_logic::{Formula, Grounder, LtlBuilder};
use vmn_mbox::{Action, Guard, KeyExpr, MboxModel};
use vmn_net::{Address, FailureScenario, HeaderClasses, NetError, NodeId, TransferFunction};
use vmn_smt::{Context, SatResult, Sort, TermId};

/// Widths of the symbolic header fields.
const ADDR_W: u32 = 32;
const PORT_W: u32 = 16;
const TAG_W: u32 = 32;

/// Event kinds (values of the 2-bit `kind` variable).
const KIND_IDLE: u64 = 0;
const KIND_SEND: u64 = 1;
const KIND_PROC: u64 = 2;

/// Ephemeral ports handed out by NAT rewrites start here; host-chosen
/// source ports stay below, which keeps fresh ports genuinely fresh.
const EPHEMERAL_BASE: u64 = 32768;

/// Symbolic header fields of one packet instance.
#[derive(Clone, Copy, Debug)]
pub struct FieldVars {
    pub src: TermId,
    pub dst: TermId,
    pub sport: TermId,
    pub dport: TermId,
    pub origin: TermId,
    pub tag: TermId,
}

/// Per-step solver variables (public so traces can be extracted).
#[derive(Clone, Debug)]
pub struct StepVars {
    pub kind: TermId,
    pub actor: TermId,
    pub present: TermId,
    pub out: FieldVars,
    pub input: FieldVars,
    pub delivered: TermId,
    pub target: TermId,
    pub choice: TermId,
    pub fresh_port: TermId,
    pub fresh_tag: TermId,
}

/// A symbolic state-set key (mirrors `vmn_mbox::exec::KeyVal`).
#[derive(Clone, Debug)]
enum SymKey {
    /// (src, sport, dst, dport) — compared symmetrically.
    Flow([TermId; 4]),
    Addr(TermId),
    Pair(TermId, TermId),
}

/// One `Insert` occurrence: if `active` holds, the middlebox added `key`
/// to `(mbox, set)` at step `step`, remembering `original`.
#[derive(Clone, Debug)]
struct InsertSite {
    mbox: NodeId,
    set: String,
    step: usize,
    active: TermId,
    key: SymKey,
    original: FieldVars,
}

/// LTL atoms used for history formulas: "insert site `s` fired at step t
/// with a key matching the (captured) lookup key".
#[derive(Clone, PartialEq, Eq, Hash)]
struct HistAtom {
    /// Index into the encoder's insert-site table; the atom is true at
    /// step `t` iff that site is at step `t` and its key matches.
    site: usize,
}

/// Selects one remembered field of an insert entry's original header.
#[derive(Clone, Copy, Debug)]
enum FieldSel {
    Src,
    Origin,
    Tag,
}

impl FieldSel {
    fn of(self, f: &FieldVars) -> TermId {
        match self {
            FieldSel::Src => f.src,
            FieldSel::Origin => f.origin,
            FieldSel::Tag => f.tag,
        }
    }
}

/// Errors the encoder can produce.
#[derive(Clone, Debug)]
pub enum EncodeError {
    Net(NetError),
    /// The invariant references a node outside the encoded node set.
    NodeOutOfScope(NodeId),
}

impl From<NetError> for EncodeError {
    fn from(e: NetError) -> Self {
        EncodeError::Net(e)
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Net(e) => write!(f, "network error: {e}"),
            EncodeError::NodeOutOfScope(n) => {
                write!(f, "invariant references node {n:?} outside the slice")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Builds the violation formula for `inv` over `nodes` (a slice or the
/// whole terminal set) with a `k`-step trace, pinned to one failure
/// scenario. The classic non-incremental entry point: `enc.ctx.check()`
/// decides the scenario and [`crate::trace::Trace::extract`] reads back a
/// witness.
pub fn encode(
    net: &Network,
    scenario: &FailureScenario,
    nodes: &[NodeId],
    inv: &Invariant,
    k: usize,
) -> Result<Encoded, EncodeError> {
    let mut enc = encode_incremental(net, nodes, inv, k)?;
    let live = enc.scenario_literal(net, scenario)?;
    enc.ctx.assert(live);
    Ok(enc)
}

/// Builds the scenario-independent violation formula for `inv` over
/// `nodes`: step semantics, middlebox models and the negated invariant,
/// but no liveness or delivery facts. Scenarios are attached afterwards
/// with [`Encoded::scenario_literal`] / checked with
/// [`Encoded::check_scenario`].
pub fn encode_incremental(
    net: &Network,
    nodes: &[NodeId],
    inv: &Invariant,
    k: usize,
) -> Result<Encoded, EncodeError> {
    let mut enc = encode_skeleton(net, nodes, k)?;
    let violated = enc.invariant_violation(net, inv)?;
    enc.ctx.assert(violated);
    enc.violation_asserted = true;
    Ok(enc)
}

/// Builds the invariant-free *skeleton* over `nodes` at trace bound `k`:
/// step semantics, FIFO ordering and middlebox models — everything both
/// the failure scenarios *and* the invariants hang off. This is the unit
/// the verifier's solver sessions cache and re-enter: invariants are
/// attached behind activation literals by [`Encoded::invariant_literal`],
/// scenarios by [`Encoded::scenario_literal`], and one
/// [`Encoded::check_invariant_scenario`] call decides any registered
/// (invariant, scenario) pair on the persistent solver.
pub fn encode_skeleton(net: &Network, nodes: &[NodeId], k: usize) -> Result<Encoded, EncodeError> {
    let mut enc = Encoded::new(net, nodes, k)?;
    enc.build_steps(net);
    Ok(enc)
}

/// The encoder output: a solver context with the violation asserted, the
/// variable tables needed to extract a counterexample, and the machinery
/// for attaching failure scenarios incrementally.
pub struct Encoded {
    pub ctx: Context,
    pub steps: Vec<StepVars>,
    /// Terminal ids in encoding order (`terminals[i]` has encoded id `i`).
    pub terminals: Vec<NodeId>,
    /// Sentinel id meaning "dropped / not delivered".
    pub drop_id: u64,
    /// `fired[(step, mbox, rule)]` — the rule-fired indicator terms.
    pub fired: HashMap<(usize, NodeId, usize), TermId>,
    /// Oracle variables per (oracle name, step).
    pub oracles: HashMap<(String, usize), TermId>,
    // ---- scenario-independent skeleton state ----------------------------
    k: usize,
    index: HashMap<NodeId, u64>,
    node_w: u32,
    step_w: u32,
    /// Destination-address equivalence classes of the static datapath
    /// (scenario-independent; each scenario reuses them for its transfer
    /// function compilation).
    classes: HeaderClasses,
    /// Host / middlebox terminals in scope (across all scenarios; each
    /// scenario's activation literal disables its failed ones).
    hosts: Vec<NodeId>,
    mboxes: Vec<NodeId>,
    /// Activation literal per registered failure scenario.
    scenarios: Vec<(FailureScenario, TermId)>,
    /// Activation literal per registered invariant (cross-invariant
    /// session reuse: one skeleton serves many invariants).
    invariants: Vec<(Invariant, TermId)>,
    /// Whether an invariant's violation formula was asserted *directly*
    /// (the [`encode_incremental`] / [`encode`] path) — required by the
    /// invariant-less [`Encoded::check_scenario`] entry point.
    violation_asserted: bool,
    // ---- build-time state ----------------------------------------------
    insert_sites: Vec<InsertSite>,
    /// pending(m, i, t): delivered-to-m(i) ∧ not processed before t.
    pending_memo: HashMap<(NodeId, usize, usize), TermId>,
    processed_memo: HashMap<(NodeId, usize, usize), TermId>,
    ltl: LtlBuilder<HistAtom>,
}

impl Encoded {
    fn new(net: &Network, nodes: &[NodeId], k: usize) -> Result<Encoded, EncodeError> {
        assert!((1..=62).contains(&k), "trace bound {k} out of supported range");
        let mut terminals: Vec<NodeId> =
            nodes.iter().copied().filter(|&n| net.topo.node(n).kind.is_terminal()).collect();
        terminals.sort();
        terminals.dedup();
        let index: HashMap<NodeId, u64> =
            terminals.iter().enumerate().map(|(i, &n)| (n, i as u64)).collect();
        let drop_id = terminals.len() as u64;
        let node_w = bits_for(drop_id + 1);
        let step_w = bits_for(k as u64);

        let classes = HeaderClasses::from_network(&net.topo, &net.tables);

        let hosts: Vec<NodeId> =
            terminals.iter().copied().filter(|&n| net.topo.node(n).kind.is_host()).collect();
        let mboxes: Vec<NodeId> =
            terminals.iter().copied().filter(|&n| net.topo.node(n).kind.is_middlebox()).collect();

        let mut ctx = Context::new();
        let mut steps = Vec::with_capacity(k);
        for t in 0..k {
            let out = FieldVars {
                src: ctx.fresh_const(format!("out_src@{t}"), Sort::bitvec(ADDR_W)),
                dst: ctx.fresh_const(format!("out_dst@{t}"), Sort::bitvec(ADDR_W)),
                sport: ctx.fresh_const(format!("out_sport@{t}"), Sort::bitvec(PORT_W)),
                dport: ctx.fresh_const(format!("out_dport@{t}"), Sort::bitvec(PORT_W)),
                origin: ctx.fresh_const(format!("out_origin@{t}"), Sort::bitvec(ADDR_W)),
                tag: ctx.fresh_const(format!("out_tag@{t}"), Sort::bitvec(TAG_W)),
            };
            let input = FieldVars {
                src: ctx.fresh_const(format!("in_src@{t}"), Sort::bitvec(ADDR_W)),
                dst: ctx.fresh_const(format!("in_dst@{t}"), Sort::bitvec(ADDR_W)),
                sport: ctx.fresh_const(format!("in_sport@{t}"), Sort::bitvec(PORT_W)),
                dport: ctx.fresh_const(format!("in_dport@{t}"), Sort::bitvec(PORT_W)),
                origin: ctx.fresh_const(format!("in_origin@{t}"), Sort::bitvec(ADDR_W)),
                tag: ctx.fresh_const(format!("in_tag@{t}"), Sort::bitvec(TAG_W)),
            };
            steps.push(StepVars {
                kind: ctx.fresh_const(format!("kind@{t}"), Sort::bitvec(2)),
                actor: ctx.fresh_const(format!("actor@{t}"), Sort::bitvec(node_w)),
                present: ctx.fresh_const(format!("present@{t}"), Sort::Bool),
                out,
                input,
                delivered: ctx.fresh_const(format!("delivered@{t}"), Sort::bitvec(node_w)),
                target: ctx.fresh_const(format!("target@{t}"), Sort::bitvec(step_w)),
                choice: ctx.fresh_const(format!("choice@{t}"), Sort::bitvec(4)),
                fresh_port: ctx.fresh_const(format!("fresh_port@{t}"), Sort::bitvec(PORT_W)),
                fresh_tag: ctx.fresh_const(format!("fresh_tag@{t}"), Sort::bitvec(TAG_W)),
            });
        }

        Ok(Encoded {
            ctx,
            steps,
            terminals,
            drop_id,
            fired: HashMap::new(),
            oracles: HashMap::new(),
            k,
            index,
            node_w,
            step_w,
            classes,
            hosts,
            mboxes,
            scenarios: Vec::new(),
            invariants: Vec::new(),
            violation_asserted: false,
            insert_sites: Vec::new(),
            pending_memo: HashMap::new(),
            processed_memo: HashMap::new(),
            ltl: LtlBuilder::new(),
        })
    }

    // ---- incremental scenario API ----------------------------------------

    /// Activation literal of `scenario`, registering (and encoding) the
    /// scenario on first use. While the literal is true, exactly this
    /// scenario's liveness and delivery facts are in force.
    pub fn scenario_literal(
        &mut self,
        net: &Network,
        scenario: &FailureScenario,
    ) -> Result<TermId, EncodeError> {
        if let Some((_, lit)) = self.scenarios.iter().find(|(s, _)| s == scenario) {
            return Ok(*lit);
        }
        let lit = self.add_scenario(net, scenario)?;
        self.scenarios.push((scenario.clone(), lit));
        Ok(lit)
    }

    /// The assumption set selecting exactly `scenario`: its activation
    /// literal positively, every other registered scenario's negatively
    /// (so no foreign delivery facts leak into the check).
    pub fn assumptions_for(
        &mut self,
        net: &Network,
        scenario: &FailureScenario,
    ) -> Result<Vec<TermId>, EncodeError> {
        let lit = self.scenario_literal(net, scenario)?;
        let others: Vec<TermId> =
            self.scenarios.iter().map(|(_, l)| *l).filter(|&l| l != lit).collect();
        let mut out = vec![lit];
        for l in others {
            out.push(self.ctx.not(l));
        }
        Ok(out)
    }

    /// Decides whether the encoded invariant is violated under `scenario`,
    /// as one assumption-based call on the persistent solver. On `Sat` the
    /// model is available for [`crate::trace::Trace::extract`].
    ///
    /// Only meaningful on encoders built by [`encode`] /
    /// [`encode_incremental`], where the invariant's violation is
    /// asserted directly. On a bare [`encode_skeleton`] (or a pooled
    /// session with literal-guarded invariants) a bare scenario check
    /// would be trivially satisfiable — use
    /// [`Encoded::check_invariant_scenario`] there instead.
    pub fn check_scenario(
        &mut self,
        net: &Network,
        scenario: &FailureScenario,
    ) -> Result<SatResult, EncodeError> {
        debug_assert!(
            self.violation_asserted,
            "check_scenario on a skeleton without an asserted invariant; \
             use check_invariant_scenario"
        );
        let assumptions = self.assumptions_for(net, scenario)?;
        Ok(self.ctx.check_assuming(&assumptions))
    }

    /// Activation literal of `inv`, registering (and encoding) the
    /// invariant's violation formula on first use: the literal *implies*
    /// the violation, so assuming it true selects the invariant while
    /// other registered invariants stay inert.
    pub fn invariant_literal(
        &mut self,
        net: &Network,
        inv: &Invariant,
    ) -> Result<TermId, EncodeError> {
        if let Some((_, lit)) = self.invariants.iter().find(|(i, _)| i == inv) {
            return Ok(*lit);
        }
        let n = self.invariants.len();
        if n > 0 {
            // A new invariant enters a warmed-up session. Lemmas derived
            // from an earlier invariant's encoding prune nothing while its
            // activation literal is assumed false, yet still drag
            // propagation through their watch lists — forget them, both by
            // the satisfied literal (clauses mentioning ¬invariant!i) and
            // by *cone*: every lemma whose derivation used a clause of the
            // earlier invariant's violation formula, activation literal or
            // not (the Tseitin interior never mentions the literal).
            // Untagged skeleton/scenario lemmas are the cross-invariant
            // payoff and stay.
            let terms: Vec<TermId> = self.invariants.iter().map(|(_, l)| *l).collect();
            let tags: Vec<u32> = (0..n as u32).collect();
            self.ctx.forget_learnts_for(&tags, &terms);
        }
        let lit = self.ctx.fresh_const(format!("invariant!{n}"), Sort::Bool);
        // Everything this invariant contributes — its violation formula
        // and the definitional side constraints `invariant_violation`
        // asserts directly — is tagged with the invariant's cone, so the
        // forget-on-switch above can discard its lemmas sharply.
        self.ctx.begin_cone(n as u32);
        let violated = match self.invariant_violation(net, inv) {
            Ok(v) => v,
            Err(e) => {
                self.ctx.end_cone();
                return Err(e);
            }
        };
        let rule = self.ctx.implies(lit, violated);
        self.ctx.assert(rule);
        self.ctx.end_cone();
        self.invariants.push((inv.clone(), lit));
        Ok(lit)
    }

    /// Number of invariants registered on this skeleton so far.
    pub fn num_registered_invariants(&self) -> usize {
        self.invariants.len()
    }

    /// Decides whether `inv` is violated under `scenario`, as one
    /// assumption-based call on the persistent solver: the invariant's
    /// activation literal is assumed true (and every other registered
    /// invariant's false, so their violation obligations cannot constrain
    /// the search) on top of the scenario assumption set. On `Sat` the
    /// model is a witness trace for exactly this (invariant, scenario)
    /// pair, extractable with [`crate::trace::Trace::extract`].
    pub fn check_invariant_scenario(
        &mut self,
        net: &Network,
        inv: &Invariant,
        scenario: &FailureScenario,
    ) -> Result<SatResult, EncodeError> {
        let lit = self.invariant_literal(net, inv)?;
        let mut assumptions = self.assumptions_for(net, scenario)?;
        assumptions.push(lit);
        let others: Vec<TermId> =
            self.invariants.iter().map(|(_, l)| *l).filter(|&l| l != lit).collect();
        for l in others {
            assumptions.push(self.ctx.not(l));
        }
        Ok(self.ctx.check_assuming(&assumptions))
    }

    /// Encodes one scenario's facts under a fresh activation literal:
    /// failed terminals neither send nor process, and live terminals'
    /// emissions are delivered by this scenario's (re-converged) transfer
    /// function.
    fn add_scenario(
        &mut self,
        net: &Network,
        scenario: &FailureScenario,
    ) -> Result<TermId, EncodeError> {
        let n = self.scenarios.len();
        let live = self.ctx.fresh_const(format!("scenario!{n}"), Sort::Bool);

        // Fail-stop: failed hosts never send, failed middleboxes never
        // process. (The skeleton already restricts senders to hosts and
        // processors to middleboxes in scope.)
        for t in 0..self.k {
            for h in self.hosts.clone() {
                if !scenario.is_failed(h) {
                    continue;
                }
                let send = self.kind_is(t, KIND_SEND);
                let ah = self.actor_is(t, h);
                let acts = self.ctx.and(&[send, ah]);
                let dead = self.ctx.not(acts);
                let rule = self.ctx.implies(live, dead);
                self.ctx.assert(rule);
            }
            for m in self.mboxes.clone() {
                if !scenario.is_failed(m) {
                    continue;
                }
                let pm = self.proc_at(t, m);
                let dead = self.ctx.not(pm);
                let rule = self.ctx.implies(live, dead);
                self.ctx.assert(rule);
            }
        }

        // Per-emitter delivery intervals compiled from this scenario's
        // transfer function, merging adjacent header classes with equal
        // outcomes. Identical interval lists across scenarios hash-cons to
        // identical terms, so overlapping scenarios share most of their CNF.
        let tf = TransferFunction::new(&net.topo, &net.tables, scenario);
        for f in self.terminals.clone() {
            if scenario.is_failed(f) {
                continue;
            }
            let mut intervals: Vec<(u32, u32, u64)> = Vec::new();
            for ci in 0..self.classes.num_classes() {
                let rep = self.classes.representative(ci);
                let result = match tf.deliver(f, rep)? {
                    Some(t) => self.index.get(&t).copied().unwrap_or(self.drop_id),
                    None => self.drop_id,
                };
                let start = rep.0;
                let end = if ci + 1 < self.classes.num_classes() {
                    self.classes.representative(ci + 1).0 - 1
                } else {
                    u32::MAX
                };
                match intervals.last_mut() {
                    Some(last) if last.2 == result && last.1.wrapping_add(1) == start => {
                        last.1 = end;
                    }
                    _ => intervals.push((start, end, result)),
                }
            }
            intervals.retain(|iv| iv.2 != self.drop_id);
            for t in 0..self.k {
                let present = self.steps[t].present;
                let af = self.actor_is(t, f);
                let cond = self.ctx.and(&[live, present, af]);
                let expr = self.delivery_expr(&intervals, self.steps[t].out.dst);
                let tie = {
                    let d = self.steps[t].delivered;
                    self.ctx.eq(d, expr)
                };
                let rule = self.ctx.implies(cond, tie);
                self.ctx.assert(rule);
            }
        }
        Ok(live)
    }

    // ---- small term helpers ----------------------------------------------

    fn node_const(&mut self, id: u64) -> TermId {
        self.ctx.bv_const(id, self.node_w)
    }

    fn step_const(&mut self, t: usize) -> TermId {
        self.ctx.bv_const(t as u64, self.step_w)
    }

    fn kind_is(&mut self, t: usize, kind: u64) -> TermId {
        let kv = self.steps[t].kind;
        let c = self.ctx.bv_const(kind, 2);
        self.ctx.eq(kv, c)
    }

    fn actor_is(&mut self, t: usize, node: NodeId) -> TermId {
        let id = self.index[&node];
        let av = self.steps[t].actor;
        let c = self.node_const(id);
        self.ctx.eq(av, c)
    }

    /// `kind[t] = PROC ∧ actor[t] = m`.
    fn proc_at(&mut self, t: usize, m: NodeId) -> TermId {
        let kp = self.kind_is(t, KIND_PROC);
        let am = self.actor_is(t, m);
        self.ctx.and(&[kp, am])
    }

    fn addr_const(&mut self, a: Address) -> TermId {
        self.ctx.bv_const(a.0 as u64, ADDR_W)
    }

    fn fields_eq(&mut self, a: FieldVars, b: FieldVars) -> TermId {
        let parts = [
            self.ctx.eq(a.src, b.src),
            self.ctx.eq(a.dst, b.dst),
            self.ctx.eq(a.sport, b.sport),
            self.ctx.eq(a.dport, b.dport),
            self.ctx.eq(a.origin, b.origin),
            self.ctx.eq(a.tag, b.tag),
        ];
        self.ctx.and(&parts)
    }

    /// Symmetric flow equality of two 4-tuples.
    fn flow_eq(&mut self, a: [TermId; 4], b: [TermId; 4]) -> TermId {
        let same = {
            let parts = [
                self.ctx.eq(a[0], b[0]),
                self.ctx.eq(a[1], b[1]),
                self.ctx.eq(a[2], b[2]),
                self.ctx.eq(a[3], b[3]),
            ];
            self.ctx.and(&parts)
        };
        let rev = {
            let parts = [
                self.ctx.eq(a[0], b[2]),
                self.ctx.eq(a[1], b[3]),
                self.ctx.eq(a[2], b[0]),
                self.ctx.eq(a[3], b[1]),
            ];
            self.ctx.and(&parts)
        };
        self.ctx.or(&[same, rev])
    }

    fn key_eq(&mut self, a: &SymKey, b: &SymKey) -> TermId {
        match (a, b) {
            (SymKey::Flow(x), SymKey::Flow(y)) => self.flow_eq(*x, *y),
            (SymKey::Addr(x), SymKey::Addr(y)) => self.ctx.eq(*x, *y),
            (SymKey::Pair(x1, x2), SymKey::Pair(y1, y2)) => {
                let e1 = self.ctx.eq(*x1, *y1);
                let e2 = self.ctx.eq(*x2, *y2);
                self.ctx.and(&[e1, e2])
            }
            // Keys of different shapes never match (they live in different
            // state sets in well-formed models; cross-shape lookups like
            // "request dst vs cached origin" both use Addr).
            _ => self.ctx.fls(),
        }
    }

    fn key_of(&mut self, expr: KeyExpr, f: FieldVars) -> SymKey {
        match expr {
            KeyExpr::Flow => SymKey::Flow([f.src, f.sport, f.dst, f.dport]),
            KeyExpr::SrcAddr => SymKey::Addr(f.src),
            KeyExpr::DstAddr => SymKey::Addr(f.dst),
            KeyExpr::Origin => SymKey::Addr(f.origin),
            KeyExpr::SrcDst => SymKey::Pair(f.src, f.dst),
        }
    }

    fn prefix_match(&mut self, field: TermId, p: vmn_net::Prefix) -> TermId {
        self.ctx.bv_prefix_match(field, p.addr().0 as u64, p.len())
    }

    fn oracle_var(&mut self, name: &str, t: usize) -> TermId {
        if let Some(&v) = self.oracles.get(&(name.to_string(), t)) {
            return v;
        }
        let v = self.ctx.fresh_const(format!("{name}@{t}"), Sort::Bool);
        self.oracles.insert((name.to_string(), t), v);
        v
    }

    // ---- delivery --------------------------------------------------------

    /// The delivery expression for a packet with symbolic destination
    /// `dst` emitted by a terminal with the given delivery intervals:
    /// nested interval tests compiled from the transfer function.
    fn delivery_expr(&mut self, intervals: &[(u32, u32, u64)], dst: TermId) -> TermId {
        let drop = self.node_const(self.drop_id);
        let mut expr = drop;
        for &(start, end, result) in intervals.iter().rev() {
            let lo = self.ctx.bv_const(start as u64, ADDR_W);
            let hi = self.ctx.bv_const(end as u64, ADDR_W);
            let ge = self.ctx.bv_ule(lo, dst);
            let le = self.ctx.bv_ule(dst, hi);
            let inside = self.ctx.and(&[ge, le]);
            let res = self.node_const(result);
            expr = self.ctx.ite(inside, res, expr);
        }
        expr
    }

    // ---- FIFO / pending machinery ----------------------------------------

    /// `processed(m, i, t)`: some step `t' ∈ (i, t)` processed instance `i`
    /// at `m`.
    fn processed(&mut self, m: NodeId, i: usize, t: usize) -> TermId {
        if t <= i + 1 {
            return self.ctx.fls();
        }
        if let Some(&memo) = self.processed_memo.get(&(m, i, t)) {
            return memo;
        }
        let before = self.processed(m, i, t - 1);
        let pm = self.proc_at(t - 1, m);
        let sel = {
            let tv = self.steps[t - 1].target;
            let ic = self.step_const(i);
            self.ctx.eq(tv, ic)
        };
        let here = self.ctx.and(&[pm, sel]);
        let out = self.ctx.or(&[before, here]);
        self.processed_memo.insert((m, i, t), out);
        out
    }

    /// `pending(m, i, t)`: instance `i` was delivered to `m` and not yet
    /// processed before step `t`.
    fn pending(&mut self, m: NodeId, i: usize, t: usize) -> TermId {
        debug_assert!(i < t);
        if let Some(&memo) = self.pending_memo.get(&(m, i, t)) {
            return memo;
        }
        let delivered = {
            let p = self.steps[i].present;
            let d = self.steps[i].delivered;
            let mc = self.node_const(self.index[&m]);
            let e = self.ctx.eq(d, mc);
            self.ctx.and(&[p, e])
        };
        let processed = self.processed(m, i, t);
        let np = self.ctx.not(processed);
        let out = self.ctx.and(&[delivered, np]);
        self.pending_memo.insert((m, i, t), out);
        out
    }

    // ---- the main build --------------------------------------------------

    fn build_steps(&mut self, net: &Network) {
        for t in 0..self.k {
            self.constrain_step(net, t);
        }
        self.constrain_fresh_values();
    }

    fn constrain_step(&mut self, net: &Network, t: usize) {
        // kind ∈ {IDLE, SEND, PROC}.
        let kv = self.steps[t].kind;
        let two = self.ctx.bv_const(KIND_PROC, 2);
        let in_range = self.ctx.bv_ule(kv, two);
        self.ctx.assert(in_range);

        // Idle steps emit nothing.
        let idle = self.kind_is(t, KIND_IDLE);
        let present = self.steps[t].present;
        let not_present = self.ctx.not(present);
        let idle_rule = self.ctx.implies(idle, not_present);
        self.ctx.assert(idle_rule);

        // Non-present steps deliver nowhere (keeps traces clean and makes
        // `delivered = d` imply a real reception).
        let dropped = {
            let d = self.steps[t].delivered;
            let dc = self.node_const(self.drop_id);
            self.ctx.eq(d, dc)
        };
        let np_drop = self.ctx.implies(not_present, dropped);
        self.ctx.assert(np_drop);

        self.constrain_send(net, t);
        self.constrain_proc(net, t);
    }

    fn constrain_send(&mut self, net: &Network, t: usize) {
        let send = self.kind_is(t, KIND_SEND);
        // The sender must be a host in scope (scenario activation literals
        // additionally rule out the hosts failed in the active scenario)…
        let mut actor_ok = Vec::new();
        for h in self.hosts.clone() {
            actor_ok.push(self.actor_is(t, h));
        }
        let any_host = self.ctx.or(&actor_ok);
        let send_actor = self.ctx.implies(send, any_host);
        self.ctx.assert(send_actor);
        // …and a send always emits.
        let present = self.steps[t].present;
        let send_present = self.ctx.implies(send, present);
        self.ctx.assert(send_present);

        // Well-formedness per host (§3.5: "new packets generated by hosts
        // are well formed"): correct source address, origin = source,
        // ephemeral port below the NAT range.
        for h in self.hosts.clone() {
            let cond = {
                let a = self.actor_is(t, h);
                self.ctx.and(&[send, a])
            };
            let addresses: Vec<Address> = net.topo.node(h).addresses.clone();
            let addr_ok = {
                let src = self.steps[t].out.src;
                let opts: Vec<TermId> = addresses
                    .iter()
                    .map(|&a| {
                        let c = self.addr_const(a);
                        self.ctx.eq(src, c)
                    })
                    .collect();
                self.ctx.or(&opts)
            };
            let origin_ok = {
                let o = self.steps[t].out.origin;
                let s = self.steps[t].out.src;
                self.ctx.eq(o, s)
            };
            let port_ok = {
                let hi = self.ctx.bv_const(EPHEMERAL_BASE - 1, PORT_W);
                self.ctx.bv_ule(self.steps[t].out.sport, hi)
            };
            let all = self.ctx.and(&[addr_ok, origin_ok, port_ok]);
            let rule = self.ctx.implies(cond, all);
            self.ctx.assert(rule);
        }
    }

    fn constrain_proc(&mut self, net: &Network, t: usize) {
        let proc = self.kind_is(t, KIND_PROC);
        if t == 0 || self.mboxes.is_empty() {
            // Nothing can be pending at step 0 (and with no middleboxes
            // in scope there is nothing to process).
            let np = self.ctx.not(proc);
            self.ctx.assert(np);
            return;
        }
        let mut actor_ok = Vec::new();
        for m in self.mboxes.clone() {
            actor_ok.push(self.actor_is(t, m));
        }
        let any_mbox = self.ctx.or(&actor_ok);
        let proc_actor = self.ctx.implies(proc, any_mbox);
        self.ctx.assert(proc_actor);

        for m in self.mboxes.clone() {
            self.constrain_proc_for_mbox(net, t, m);
        }

        // Bind input fields to the targeted instance (shared across
        // middlebox identities).
        for i in 0..t {
            let sel = {
                let tv = self.steps[t].target;
                let ic = self.step_const(i);
                let e = self.ctx.eq(tv, ic);
                self.ctx.and(&[proc, e])
            };
            let tie = self.fields_eq(self.steps[t].input, self.steps[i].out);
            let rule = self.ctx.implies(sel, tie);
            self.ctx.assert(rule);
        }
    }

    fn constrain_proc_for_mbox(&mut self, net: &Network, t: usize, m: NodeId) {
        let pm = self.proc_at(t, m);

        // FIFO target selection: the oldest pending instance.
        let mut options = Vec::new();
        let mut younger_pending: Vec<TermId> = Vec::new();
        for i in 0..t {
            let pend_i = self.pending(m, i, t);
            let none_older = {
                let negs: Vec<TermId> = younger_pending.iter().map(|&p| self.ctx.not(p)).collect();
                self.ctx.and(&negs)
            };
            let sel = {
                let tv = self.steps[t].target;
                let ic = self.step_const(i);
                self.ctx.eq(tv, ic)
            };
            let opt = self.ctx.and(&[sel, pend_i, none_older]);
            options.push(opt);
            younger_pending.push(pend_i);
        }
        let some_target = self.ctx.or(&options);
        let rule = self.ctx.implies(pm, some_target);
        self.ctx.assert(rule);

        // Rule guards with first-match semantics.
        let model = net.model(m).clone();
        let input = self.steps[t].input;
        let mut guard_terms = Vec::with_capacity(model.rules.len());
        for r in &model.rules {
            let g = self.guard_term(&model, m, &r.guard, input, t);
            guard_terms.push(g);
        }
        let mut no_earlier = self.ctx.tru();
        let mut fired_emitting = Vec::new();
        for (ri, rule_arm) in model.rules.iter().enumerate() {
            let fired = self.ctx.and(&[pm, no_earlier, guard_terms[ri]]);
            self.fired.insert((t, m, ri), fired);
            let ng = self.ctx.not(guard_terms[ri]);
            no_earlier = self.ctx.and(&[no_earlier, ng]);

            let emits = self.apply_actions(t, m, ri, &model, &rule_arm.actions, fired);
            if emits {
                fired_emitting.push(fired);
            }
        }
        // present ⟺ an emitting rule fired (under pm).
        let any_emit = self.ctx.or(&fired_emitting);
        let present = self.steps[t].present;
        let iff = self.ctx.iff(present, any_emit);
        let rule = self.ctx.implies(pm, iff);
        self.ctx.assert(rule);

        // If no rule fires at all the packet is dropped silently — models
        // end with catch-alls, so just ensure present is false then, which
        // the iff above already guarantees.

        // Mutual-exclusion constraints among oracle classes (§3.4 output
        // constraints), applied to this step's packet.
        for group in model.exclusive_oracles.clone() {
            let vars: Vec<TermId> = group.iter().map(|name| self.oracle_var(name, t)).collect();
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    let ni = self.ctx.not(vars[i]);
                    let nj = self.ctx.not(vars[j]);
                    let amo = self.ctx.or(&[ni, nj]);
                    let rule = self.ctx.implies(pm, amo);
                    self.ctx.assert(rule);
                }
            }
        }
    }

    /// Symbolically executes the action list of one rule. Returns whether
    /// the rule emits a packet.
    fn apply_actions(
        &mut self,
        t: usize,
        m: NodeId,
        _ri: usize,
        model: &MboxModel,
        actions: &[Action],
        fired: TermId,
    ) -> bool {
        let input = self.steps[t].input;
        let mut cur = input;
        let mut emits = false;
        let mut responded: Option<FieldVars> = None;
        for action in actions {
            match action {
                Action::Forward => {
                    emits = true;
                    responded = None;
                }
                Action::Drop => {
                    emits = false;
                    responded = None;
                }
                Action::RewriteSrc(a) => {
                    cur = FieldVars { src: self.addr_const(*a), ..cur };
                }
                Action::RewriteDst(a) => {
                    cur = FieldVars { dst: self.addr_const(*a), ..cur };
                }
                Action::RewriteDstOneOf(addrs) => {
                    // dst := addrs[choice], choice constrained in range.
                    let n = addrs.len() as u64;
                    let choice = self.steps[t].choice;
                    let max = self.ctx.bv_const(n - 1, 4);
                    let in_range = self.ctx.bv_ule(choice, max);
                    let rule = self.ctx.implies(fired, in_range);
                    self.ctx.assert(rule);
                    let mut expr = self.addr_const(addrs[0]);
                    for (i, &a) in addrs.iter().enumerate().skip(1) {
                        let ic = self.ctx.bv_const(i as u64, 4);
                        let is_i = self.ctx.eq(choice, ic);
                        let ac = self.addr_const(a);
                        expr = self.ctx.ite(is_i, ac, expr);
                    }
                    cur = FieldVars { dst: expr, ..cur };
                }
                Action::RewriteSrcPortFresh => {
                    cur = FieldVars { sport: self.steps[t].fresh_port, ..cur };
                }
                Action::HavocTag => {
                    cur = FieldVars { tag: self.steps[t].fresh_tag, ..cur };
                }
                Action::Insert(set) => {
                    let decl = model.state_decl(set).expect("validated model");
                    let key = self.key_of(decl.key, cur);
                    self.insert_sites.push(InsertSite {
                        mbox: m,
                        set: set.clone(),
                        step: t,
                        active: fired,
                        key,
                        original: input,
                    });
                }
                Action::RestoreDstFromState(set) => {
                    let lookup = self.key_of(KeyExpr::Flow, cur);
                    if let Some((dst, dport)) =
                        self.bind_witness(t, m, set, &lookup, fired, |orig| (orig.src, orig.sport))
                    {
                        cur = FieldVars { dst, dport, ..cur };
                    }
                }
                Action::RespondFromState(set) => {
                    let lookup = SymKey::Addr(cur.dst);
                    // The response: src from the remembered original,
                    // reversed ports, origin and tag from the original.
                    let resp_src =
                        self.ctx.fresh_const(format!("resp_src@{t}"), Sort::bitvec(ADDR_W));
                    let resp_origin =
                        self.ctx.fresh_const(format!("resp_origin@{t}"), Sort::bitvec(ADDR_W));
                    let resp_tag =
                        self.ctx.fresh_const(format!("resp_tag@{t}"), Sort::bitvec(TAG_W));
                    self.bind_witness_multi(
                        t,
                        m,
                        set,
                        &lookup,
                        fired,
                        &[
                            (resp_src, FieldSel::Src),
                            (resp_origin, FieldSel::Origin),
                            (resp_tag, FieldSel::Tag),
                        ],
                    );
                    responded = Some(FieldVars {
                        src: resp_src,
                        dst: cur.src,
                        sport: cur.dport,
                        dport: cur.sport,
                        origin: resp_origin,
                        tag: resp_tag,
                    });
                    emits = true;
                }
            }
        }
        if emits {
            let outv = self.steps[t].out;
            let final_fields = responded.unwrap_or(cur);
            let tie = self.fields_eq(outv, final_fields);
            let rule = self.ctx.implies(fired, tie);
            self.ctx.assert(rule);
        }
        emits
    }

    /// Binds a witness insert-entry for a state lookup, constraining two
    /// derived values from the entry's remembered original via `sel`.
    /// Returns fresh variables carrying the selected fields, or `None`
    /// when no insert site for the set exists (lookup can never match; the
    /// guard will be false anyway).
    fn bind_witness(
        &mut self,
        t: usize,
        m: NodeId,
        set: &str,
        lookup: &SymKey,
        fired: TermId,
        sel: fn(&FieldVars) -> (TermId, TermId),
    ) -> Option<(TermId, TermId)> {
        let sites: Vec<InsertSite> = self
            .insert_sites
            .iter()
            .filter(|s| s.mbox == m && s.set == set && s.step < t)
            .cloned()
            .collect();
        if sites.is_empty() {
            return None;
        }
        let a = self.ctx.fresh_const(format!("wit_a@{t}"), Sort::bitvec(ADDR_W));
        let b = self.ctx.fresh_const(format!("wit_b@{t}"), Sort::bitvec(PORT_W));
        let mut any = Vec::new();
        for site in &sites {
            let keq = self.key_eq(&site.key, lookup);
            let (va, vb) = sel(&site.original);
            let ea = self.ctx.eq(a, va);
            let eb = self.ctx.eq(b, vb);
            let all = self.ctx.and(&[site.active, keq, ea, eb]);
            any.push(all);
        }
        let some = self.ctx.or(&any);
        let rule = self.ctx.implies(fired, some);
        self.ctx.assert(rule);
        Some((a, b))
    }

    /// Like [`Encoded::bind_witness`] but binds several fields of the
    /// matched original at once.
    fn bind_witness_multi(
        &mut self,
        t: usize,
        m: NodeId,
        set: &str,
        lookup: &SymKey,
        fired: TermId,
        outs: &[(TermId, FieldSel)],
    ) {
        let sites: Vec<InsertSite> = self
            .insert_sites
            .iter()
            .filter(|s| s.mbox == m && s.set == set && s.step < t)
            .cloned()
            .collect();
        if sites.is_empty() {
            // The guard (StateContains) is false without sites; force
            // fired to be impossible for safety.
            let nf = self.ctx.not(fired);
            self.ctx.assert(nf);
            return;
        }
        let mut any = Vec::new();
        for site in &sites {
            let keq = self.key_eq(&site.key, lookup);
            let mut parts = vec![site.active, keq];
            for (var, field) in outs {
                let v = field.of(&site.original);
                parts.push(self.ctx.eq(*var, v));
            }
            let all = self.ctx.and(&parts);
            any.push(all);
        }
        let some = self.ctx.or(&any);
        let rule = self.ctx.implies(fired, some);
        self.ctx.assert(rule);
    }

    /// Compiles a model guard over the step's input fields, in the context
    /// of middlebox `m` (state lookups only see `m`'s own inserts).
    fn guard_term(
        &mut self,
        model: &MboxModel,
        m: NodeId,
        g: &Guard,
        f: FieldVars,
        t: usize,
    ) -> TermId {
        match g {
            Guard::True => self.ctx.tru(),
            Guard::Not(inner) => {
                let x = self.guard_term(model, m, inner, f, t);
                self.ctx.not(x)
            }
            Guard::And(gs) => {
                let xs: Vec<TermId> =
                    gs.iter().map(|g| self.guard_term(model, m, g, f, t)).collect();
                self.ctx.and(&xs)
            }
            Guard::Or(gs) => {
                let xs: Vec<TermId> =
                    gs.iter().map(|g| self.guard_term(model, m, g, f, t)).collect();
                self.ctx.or(&xs)
            }
            Guard::SrcIn(p) => self.prefix_match(f.src, *p),
            Guard::DstIn(p) => self.prefix_match(f.dst, *p),
            Guard::SrcIs(a) => {
                let c = self.addr_const(*a);
                self.ctx.eq(f.src, c)
            }
            Guard::DstIs(a) => {
                let c = self.addr_const(*a);
                self.ctx.eq(f.dst, c)
            }
            Guard::SrcPortIs(p) => {
                let c = self.ctx.bv_const(*p as u64, PORT_W);
                self.ctx.eq(f.sport, c)
            }
            Guard::DstPortIs(p) => {
                let c = self.ctx.bv_const(*p as u64, PORT_W);
                self.ctx.eq(f.dport, c)
            }
            Guard::ProtoIs(_) => {
                // The encoding models a single transport protocol (see
                // DESIGN.md); protocol guards are compile-time true.
                self.ctx.tru()
            }
            Guard::OriginIn(p) => self.prefix_match(f.origin, *p),
            Guard::OriginIs(a) => {
                let c = self.addr_const(*a);
                self.ctx.eq(f.origin, c)
            }
            Guard::AclMatch(name) => {
                let pairs = model.acl_pairs(name).expect("validated model").to_vec();
                let opts: Vec<TermId> = pairs
                    .iter()
                    .map(|(sp, dp)| {
                        let s = self.prefix_match(f.src, *sp);
                        let d = self.prefix_match(f.dst, *dp);
                        self.ctx.and(&[s, d])
                    })
                    .collect();
                self.ctx.or(&opts)
            }
            Guard::StateContains { state, key } => {
                // History formula: ♦(matching insert fired) — grounded by
                // the vmn-logic machinery over steps 0..t-1. Inserts at the
                // current step are not yet visible (the concrete
                // interpreter evaluates guards before actions).
                let lookup = self.key_of(*key, f);
                self.history_lookup(t, m, &lookup, state)
            }
            Guard::Oracle(name) => self.oracle_var(name, t),
        }
    }

    /// `∃ t' < t` with a matching active insert — built as an `earlier`
    /// formula through the LTL grounder so the unrolling shares structure.
    ///
    /// Only inserts performed by middlebox `m` itself are visible: two
    /// firewall instances may both declare a set named `established`, but
    /// their state is per-instance (this is what makes firewalls
    /// flow-parallel across instances).
    fn history_lookup(&mut self, t: usize, m: NodeId, lookup: &SymKey, set: &str) -> TermId {
        let mut matches = Vec::new();
        for site_idx in 0..self.insert_sites.len() {
            let site = self.insert_sites[site_idx].clone();
            if site.mbox != m || site.set != set || site.step >= t {
                continue;
            }
            let keq = self.key_eq(&site.key, lookup);
            let m = self.ctx.and(&[site.active, keq]);
            matches.push((site.step, m));
        }
        if matches.is_empty() {
            return self.ctx.fls();
        }
        // Ground `earlier(atom)` at step t where atom(s) = OR of matches
        // at step s. (The grounder's memoisation is per lookup here; the
        // point of routing through vmn-logic is to keep the temporal
        // semantics in one audited place.)
        let atom = self.ltl.atom(HistAtom { site: self.ltl.len() });
        let formula: Formula = self.ltl.earlier(atom);
        let mut grounder: Grounder<HistAtom> = Grounder::new();
        let by_step: HashMap<usize, Vec<TermId>> =
            matches.iter().fold(HashMap::new(), |mut acc, (s, m)| {
                acc.entry(*s).or_default().push(*m);
                acc
            });
        let ltl = &self.ltl;
        let ctx = &mut self.ctx;
        grounder.ground(ltl, ctx.pool_mut(), formula, t, &mut |pool, _a, s| match by_step.get(&s) {
            Some(ms) => pool.or(ms),
            None => pool.fls(),
        })
    }

    fn constrain_fresh_values(&mut self) {
        // Fresh NAT ports live in the ephemeral range and are pairwise
        // distinct, so they can never collide with host-chosen ports or
        // each other.
        let base = self.ctx.bv_const(EPHEMERAL_BASE, PORT_W);
        for t in 0..self.k {
            let fp = self.steps[t].fresh_port;
            let ge = self.ctx.bv_ule(base, fp);
            self.ctx.assert(ge);
            for u in 0..t {
                let fu = self.steps[u].fresh_port;
                let e = self.ctx.eq(fp, fu);
                let ne = self.ctx.not(e);
                self.ctx.assert(ne);
            }
        }
    }

    // ---- invariants --------------------------------------------------------

    fn recv_at(&mut self, d: NodeId, t: usize) -> TermId {
        let id = self.index[&d];
        let present = self.steps[t].present;
        let dc = self.node_const(id);
        let dv = self.steps[t].delivered;
        let e = self.ctx.eq(dv, dc);
        self.ctx.and(&[present, e])
    }

    /// Builds the violation formula for `inv` and returns it as a term
    /// (asserted directly by [`encode_incremental`], or guarded behind an
    /// activation literal by [`Encoded::invariant_literal`]). Definitional
    /// side constraints over invariant-private fresh variables (e.g. the
    /// traversal provenance bits) are asserted unconditionally — they
    /// constrain nothing once the invariant is deselected.
    fn invariant_violation(
        &mut self,
        net: &Network,
        inv: &Invariant,
    ) -> Result<TermId, EncodeError> {
        for n in inv.endpoints() {
            if !self.index.contains_key(&n) {
                return Err(EncodeError::NodeOutOfScope(n));
            }
        }
        let violation = match inv {
            Invariant::NodeIsolation { src, dst } => {
                let saddr = net.host_address(*src);
                let mut cases = Vec::new();
                for t in 0..self.k {
                    let r = self.recv_at(*dst, t);
                    let sc = self.addr_const(saddr);
                    let from_s = self.ctx.eq(self.steps[t].out.src, sc);
                    cases.push(self.ctx.and(&[r, from_s]));
                }
                self.ctx.or(&cases)
            }
            Invariant::FlowIsolation { src, dst } => {
                let saddr = net.host_address(*src);
                let mut cases = Vec::new();
                for t in 0..self.k {
                    let r = self.recv_at(*dst, t);
                    let sc = self.addr_const(saddr);
                    let from_s = self.ctx.eq(self.steps[t].out.src, sc);
                    // ¬∃ t' < t: dst sent a packet of the same flow.
                    let mut initiated = Vec::new();
                    for u in 0..t {
                        let sent = {
                            let k = self.kind_is(u, KIND_SEND);
                            let a = self.actor_is(u, *dst);
                            self.ctx.and(&[k, a])
                        };
                        let fe = {
                            let fu = self.steps[u].out;
                            let ft = self.steps[t].out;
                            self.flow_eq(
                                [fu.src, fu.sport, fu.dst, fu.dport],
                                [ft.src, ft.sport, ft.dst, ft.dport],
                            )
                        };
                        initiated.push(self.ctx.and(&[sent, fe]));
                    }
                    let any_init = self.ctx.or(&initiated);
                    let not_init = self.ctx.not(any_init);
                    cases.push(self.ctx.and(&[r, from_s, not_init]));
                }
                self.ctx.or(&cases)
            }
            Invariant::DataIsolation { origin, dst } => {
                let oaddr = net.host_address(*origin);
                let mut cases = Vec::new();
                for t in 0..self.k {
                    let r = self.recv_at(*dst, t);
                    let oc = self.addr_const(oaddr);
                    let from_o = self.ctx.eq(self.steps[t].out.origin, oc);
                    cases.push(self.ctx.and(&[r, from_o]));
                }
                self.ctx.or(&cases)
            }
            Invariant::Traversal { dst, through, from } => {
                // Per-step provenance: touched (processed by a `through`
                // box somewhere along the chain) and, optionally, rooted
                // at `from`.
                let mut touched: Vec<TermId> = Vec::with_capacity(self.k);
                let mut rooted: Vec<TermId> = Vec::with_capacity(self.k);
                for t in 0..self.k {
                    let tv = self.ctx.fresh_const(format!("touched@{t}"), Sort::Bool);
                    let rv = self.ctx.fresh_const(format!("rooted@{t}"), Sort::Bool);
                    touched.push(tv);
                    rooted.push(rv);
                }
                for t in 0..self.k {
                    let send = self.kind_is(t, KIND_SEND);
                    // Sends are untouched; rooted iff the sender is `from`
                    // (or unconditionally when no `from` restriction).
                    let nt = self.ctx.not(touched[t]);
                    let st = self.ctx.implies(send, nt);
                    self.ctx.assert(st);
                    let root_now = match from {
                        Some(s) => self.actor_is(t, *s),
                        None => self.ctx.tru(),
                    };
                    let riff = self.ctx.iff(rooted[t], root_now);
                    let sr = self.ctx.implies(send, riff);
                    self.ctx.assert(sr);
                    // Processing steps inherit from the target, adding
                    // `through` membership.
                    for i in 0..t {
                        let sel = {
                            let k = self.kind_is(t, KIND_PROC);
                            let tv = self.steps[t].target;
                            let ic = self.step_const(i);
                            let e = self.ctx.eq(tv, ic);
                            self.ctx.and(&[k, e])
                        };
                        let via_now = {
                            let members: Vec<NodeId> = through
                                .iter()
                                .copied()
                                .filter(|m| self.index.contains_key(m))
                                .collect();
                            let opts: Vec<TermId> =
                                members.iter().map(|&m| self.actor_is(t, m)).collect();
                            self.ctx.or(&opts)
                        };
                        let inherit_or_now = {
                            let o = self.ctx.or(&[touched[i], via_now]);
                            self.ctx.iff(touched[t], o)
                        };
                        let ri = self.ctx.iff(rooted[t], rooted[i]);
                        let both = self.ctx.and(&[inherit_or_now, ri]);
                        let rule = self.ctx.implies(sel, both);
                        self.ctx.assert(rule);
                    }
                }
                let mut cases = Vec::new();
                for t in 0..self.k {
                    let r = self.recv_at(*dst, t);
                    let nt = self.ctx.not(touched[t]);
                    cases.push(self.ctx.and(&[r, nt, rooted[t]]));
                }
                self.ctx.or(&cases)
            }
        };
        Ok(violation)
    }
}

fn bits_for(n: u64) -> u32 {
    let mut w = 1;
    while (1u64 << w) < n {
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_sizes() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }
}

#[cfg(test)]
mod encoder_tests {
    use super::*;
    use crate::network::Network;
    use vmn_net::{FailureScenario, RoutingConfig, Topology};
    use vmn_smt::SatResult;

    fn two_hosts() -> (Network, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_host("a", "10.0.0.1".parse().unwrap());
        let b = topo.add_host("b", "10.0.0.2".parse().unwrap());
        let sw = topo.add_switch("sw");
        topo.add_link(a, sw);
        topo.add_link(b, sw);
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let tables = rc.build(&topo, &FailureScenario::none());
        (Network::new(topo, tables), a, b)
    }

    #[test]
    fn reachability_is_sat_isolation_of_absent_flows_unsat() {
        let (net, a, b) = two_hosts();
        let none = FailureScenario::none();
        // a can reach b: the negated isolation invariant is satisfiable.
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let mut enc = encode(&net, &none, &[a, b], &inv, 3).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Sat);
        // b never *originates* data of a... the data isolation in reverse:
        // a's data cannot appear at a itself from b without a sending it —
        // but a CAN send to b, so data-isolation a->b is violated too.
        let inv = Invariant::DataIsolation { origin: a, dst: b };
        let mut enc = encode(&net, &none, &[a, b], &inv, 3).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Sat);
    }

    #[test]
    fn failed_destination_cannot_receive() {
        let (net, a, b) = two_hosts();
        let failed = FailureScenario::nodes([b]);
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let mut enc = encode(&net, &failed, &[a, b], &inv, 4).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Unsat, "failed hosts receive nothing");
    }

    #[test]
    fn failed_source_cannot_send() {
        let (net, a, b) = two_hosts();
        let failed = FailureScenario::nodes([a]);
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let mut enc = encode(&net, &failed, &[a, b], &inv, 4).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Unsat, "failed hosts send nothing");
    }

    #[test]
    fn out_of_scope_endpoints_are_rejected() {
        let (net, a, b) = two_hosts();
        let none = FailureScenario::none();
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let err = match encode(&net, &none, &[a], &inv, 3) {
            Ok(_) => panic!("expected an out-of-scope error"),
            Err(e) => e,
        };
        assert!(matches!(err, EncodeError::NodeOutOfScope(n) if n == b));
    }

    #[test]
    fn one_step_traces_cannot_violate_between_distinct_hosts() {
        // With K=1 there is only room for a single send; delivery happens
        // in the same step, so a 1-step violation IS possible. With the
        // destination absent from scope, nothing can be delivered.
        let (net, a, b) = two_hosts();
        let none = FailureScenario::none();
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let mut enc = encode(&net, &none, &[a, b], &inv, 1).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Sat, "send+deliver is atomic");
    }

    #[test]
    fn flow_isolation_needs_history() {
        // Flow isolation from a to b: violated (a initiates), because a's
        // unsolicited packet reaches b regardless of b's state.
        let (net, a, b) = two_hosts();
        let none = FailureScenario::none();
        let inv = Invariant::FlowIsolation { src: a, dst: b };
        let mut enc = encode(&net, &none, &[a, b], &inv, 4).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Sat);
    }

    #[test]
    fn spoofing_is_impossible() {
        // b cannot fabricate packets carrying a's source address: if a
        // never sends and b is the only other host, no reception at b...
        // more precisely: isolation of a's ADDRESS at a itself cannot be
        // violated by b alone sending with its own constrained source.
        let (net, a, b) = two_hosts();
        let none = FailureScenario::none();
        let inv = Invariant::NodeIsolation { src: b, dst: b };
        // b would have to receive a packet with src(b); only b owns that
        // address and self-delivery via the fabric doesn't occur (dst must
        // be b's own address from a's send... a's src is constrained to a).
        let mut enc = encode(&net, &none, &[a, b], &inv, 4).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Sat, "b can send to itself via the fabric");
        // But a packet with b's source arriving at *a* can only be a real
        // b-send: forbid b from acting and it becomes impossible.
        let inv = Invariant::NodeIsolation { src: b, dst: a };
        let failed_b = FailureScenario::nodes([b]);
        let mut enc = encode(&net, &failed_b, &[a, b], &inv, 4).unwrap();
        assert_eq!(enc.ctx.check(), SatResult::Unsat, "nobody can spoof b's address");
    }

    #[test]
    fn one_encoder_many_scenarios() {
        // The incremental API answers several scenarios from one encoder,
        // with verdicts identical to scenario-pinned fresh encoders.
        let (net, a, b) = two_hosts();
        let inv = Invariant::NodeIsolation { src: a, dst: b };
        let scenarios = [
            FailureScenario::none(),
            FailureScenario::nodes([a]),
            FailureScenario::nodes([b]),
            FailureScenario::none(), // revisit: cached literal, same answer
        ];
        let mut enc = encode_incremental(&net, &[a, b], &inv, 4).unwrap();
        for s in &scenarios {
            let want = {
                let mut fresh = encode(&net, s, &[a, b], &inv, 4).unwrap();
                fresh.ctx.check()
            };
            let got = enc.check_scenario(&net, s).unwrap();
            assert_eq!(got, want, "scenario {s:?}");
        }
        // Only three distinct scenarios were registered.
        assert_eq!(enc.scenarios.len(), 3);
    }

    #[test]
    fn one_skeleton_many_invariants_and_scenarios() {
        // The session API answers every (invariant, scenario) pair from
        // ONE skeleton, with verdicts identical to invariant-pinned fresh
        // encoders — the core soundness claim behind cross-invariant
        // solver reuse.
        let (net, a, b) = two_hosts();
        let invs = [
            Invariant::NodeIsolation { src: a, dst: b },
            Invariant::NodeIsolation { src: b, dst: a },
            Invariant::DataIsolation { origin: a, dst: b },
        ];
        let scenarios =
            [FailureScenario::none(), FailureScenario::nodes([a]), FailureScenario::nodes([b])];
        let mut enc = encode_skeleton(&net, &[a, b], 4).unwrap();
        for inv in &invs {
            for s in &scenarios {
                let want = {
                    let mut fresh = encode(&net, s, &[a, b], inv, 4).unwrap();
                    fresh.ctx.check()
                };
                let got = enc.check_invariant_scenario(&net, inv, s).unwrap();
                assert_eq!(got, want, "{inv:?} under {s:?}");
            }
        }
        assert_eq!(enc.num_registered_invariants(), 3);
        // Revisits (reverse order) hit the cached literals and still agree.
        for inv in invs.iter().rev() {
            let none = FailureScenario::none();
            let want = {
                let mut fresh = encode(&net, &none, &[a, b], inv, 4).unwrap();
                fresh.ctx.check()
            };
            assert_eq!(enc.check_invariant_scenario(&net, inv, &none).unwrap(), want);
        }
        assert_eq!(enc.num_registered_invariants(), 3);
    }
}
