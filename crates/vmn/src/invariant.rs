//! Reachability invariants (§3.3 of the paper).
//!
//! All invariants are safety properties of the form
//! `∀n,p: □¬(rcv(d, n, p) ∧ predicate(p))` — "d never receives a packet
//! matching the predicate". Each variant below fixes a predicate family
//! from the paper; a *violation* is a finite trace ending in a matching
//! reception.

use vmn_net::NodeId;

/// A reachability invariant to verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// *Simple isolation*: `dst` never receives a packet whose source
    /// address belongs to `src`
    /// (`∀n,p: □¬(rcv(dst,n,p) ∧ src(p) = src)`).
    NodeIsolation { src: NodeId, dst: NodeId },

    /// *Flow isolation*: `dst` receives packets from `src` only on flows
    /// that `dst` itself initiated (hole-punching semantics).
    FlowIsolation { src: NodeId, dst: NodeId },

    /// *Data isolation*: `dst` never receives a packet whose data
    /// originates at `origin` (`∀n,p: □¬(rcv(dst,n,p) ∧ origin(p) = s)`),
    /// whether directly or through an intermediary such as a content
    /// cache.
    DataIsolation { origin: NodeId, dst: NodeId },

    /// *Traversal*: every packet delivered to `dst` must have been
    /// processed by at least one of `through` (e.g. "all traffic to the
    /// rack passes an IDPS"). `from` optionally restricts the obligation
    /// to packets originating at one host.
    Traversal { dst: NodeId, through: Vec<NodeId>, from: Option<NodeId> },
}

impl Invariant {
    /// Hosts and middleboxes the invariant textually references — the
    /// nodes a slice must contain (§4).
    pub fn endpoints(&self) -> Vec<NodeId> {
        match self {
            Invariant::NodeIsolation { src, dst } | Invariant::FlowIsolation { src, dst } => {
                vec![*src, *dst]
            }
            Invariant::DataIsolation { origin, dst } => vec![*origin, *dst],
            Invariant::Traversal { dst, through, from } => {
                let mut v = vec![*dst];
                v.extend(through.iter().copied());
                v.extend(from.iter().copied());
                v
            }
        }
    }

    /// Short label for reports and benchmarks.
    pub fn kind(&self) -> &'static str {
        match self {
            Invariant::NodeIsolation { .. } => "node-isolation",
            Invariant::FlowIsolation { .. } => "flow-isolation",
            Invariant::DataIsolation { .. } => "data-isolation",
            Invariant::Traversal { .. } => "traversal",
        }
    }

    /// Number of distinct packets a minimal violation needs in flight —
    /// used by the trace-bound computation ([`crate::bounds`]).
    pub fn witness_packets(&self) -> usize {
        match self {
            Invariant::NodeIsolation { .. } => 1,
            // The offending packet plus (for the "holds" direction) the
            // flow-establishing packet the firewall would require.
            Invariant::FlowIsolation { .. } => 2,
            // Cache warm-up: origin's response, then the request/response
            // pair serving the cached copy.
            Invariant::DataIsolation { .. } => 3,
            Invariant::Traversal { .. } => 1,
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invariant::NodeIsolation { src, dst } => {
                write!(f, "node-isolation({src:?} -/-> {dst:?})")
            }
            Invariant::FlowIsolation { src, dst } => {
                write!(f, "flow-isolation({src:?} -/-> {dst:?})")
            }
            Invariant::DataIsolation { origin, dst } => {
                write!(f, "data-isolation(data({origin:?}) -/-> {dst:?})")
            }
            Invariant::Traversal { dst, through, from } => {
                write!(f, "traversal({from:?} -> {dst:?} via {through:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_cover_references() {
        let inv = Invariant::Traversal {
            dst: NodeId(3),
            through: vec![NodeId(7), NodeId(9)],
            from: Some(NodeId(1)),
        };
        assert_eq!(inv.endpoints(), vec![NodeId(3), NodeId(7), NodeId(9), NodeId(1)]);
    }

    #[test]
    fn witness_packet_counts_ordered_by_statefulness() {
        let a = Invariant::NodeIsolation { src: NodeId(0), dst: NodeId(1) };
        let b = Invariant::FlowIsolation { src: NodeId(0), dst: NodeId(1) };
        let c = Invariant::DataIsolation { origin: NodeId(0), dst: NodeId(1) };
        assert!(a.witness_packets() < b.witness_packets());
        assert!(b.witness_packets() < c.witness_packets());
    }
}
