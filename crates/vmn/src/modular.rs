//! Modular verification: partitions, synthesized boundary contracts
//! and the contract fast path.
//!
//! The network is split into modules ([`Partition`], explicit or from
//! the auto-partitioner). For every directed live edge the synthesizer
//! computes a [`WindowSet`] over-approximating the `(src, dst)` address
//! headers of packets that can cross the edge under a scenario, by a
//! worklist fixpoint over the delivery semantics of
//! [`vmn_net::transfer`]:
//!
//! * a live host seeds its incident edges with `(own address, any)`
//!   windows — the encoder only admits well-formed sends, so sources
//!   cannot be spoofed (src seeds are widened to the covering aggregate
//!   of host prefixes, which only adds headers and keeps the fixpoint
//!   small on large estates);
//! * a switch forwards a window to a live neighbour after narrowing the
//!   destination side by the union of its rules toward that neighbour
//!   (priorities and `from` qualifiers are ignored — a sound widening);
//! * a middlebox emits according to its [`ForwardSummary`]: a
//!   pass-through filter re-emits the arrived windows intersected with
//!   the summary's set, while a model that can rewrite or replay
//!   headers emits *any* header as soon as anything at all reaches it —
//!   a rewritten packet (a load balancer's VIP→backend, a NAT's
//!   restored destination, a cache's replayed response) occupies
//!   windows unrelated to the ones it arrived in, so intersecting with
//!   the arrival would unsoundly drop it;
//! * terminals deliver directly to adjacent terminals owning the
//!   destination, and inject into every adjacent switch.
//!
//! Windows are built from prefixes mentioned in the configuration
//! (intersection of two prefixes is the longer one or empty), so the
//! fixpoint terminates.
//!
//! The window sets on cut edges *are* the module contracts: the set on
//! an incoming cut edge is the module's ingress assumption, the set on
//! an outgoing one its egress guarantee. Synthesized contracts compose
//! by construction (each edge carries one set, so the guarantee equals
//! the assumption); explicitly declared contracts are checked against
//! the synthesis — a declared egress must cover the synthesized
//! crossing ([`ContractError::Unsound`]) and imply the neighbour's
//! ingress assumption ([`ContractError::Compose`]). Because the encoder
//! is fail-stop (failed nodes neither send nor process), every
//! scenario's crossings are a subset of the no-failure crossings, so
//! one check against the no-failure synthesis covers all scenarios.
//!
//! The fast path answers isolation invariants whose endpoints lie in
//! *different* modules: both `NodeIsolation` and `FlowIsolation`
//! violations require `dst` to receive a packet whose source header is
//! `src`'s address, so when no window on any live edge into `dst`
//! admits such a header the invariant holds. Anything inconclusive
//! falls back to the exact engine, which keeps modular verdicts and
//! witnesses identical to the monolithic ones by construction.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use vmn_analysis::{
    auto_partition, ContractError, ModuleContract, Partition, PortContract, WindowSet,
};
use vmn_mbox::{Action, Guard, KeyExpr, MboxModel};
use vmn_net::{Address, FailureScenario, NodeId, Prefix, Topology};

use crate::invariant::Invariant;
use crate::network::Network;

/// Recursion bound for state-read summaries (a rule inserting into a
/// state set may itself be guarded by a state read).
const STATE_DEPTH_LIMIT: u32 = 3;

/// CIDR-aggregates a prefix list: covered prefixes are dropped and
/// sibling pairs merge into their parent, repeatedly. The result is a
/// disjoint cover of the input (exact, not a widening).
pub fn aggregate_prefixes(mut ps: Vec<Prefix>) -> Vec<Prefix> {
    loop {
        ps.sort();
        ps.dedup();
        let snapshot = ps.clone();
        ps.retain(|p| !snapshot.iter().any(|q| *q != *p && q.covers(*p)));
        let mut out: Vec<Prefix> = Vec::with_capacity(ps.len());
        let mut merged = false;
        let mut i = 0;
        while i < ps.len() {
            if i + 1 < ps.len() && ps[i].len() == ps[i + 1].len() && ps[i].len() > 0 {
                let parent = Prefix::new(ps[i].addr(), ps[i].len() - 1);
                if parent.covers(ps[i + 1]) {
                    out.push(parent);
                    merged = true;
                    i += 2;
                    continue;
                }
            }
            out.push(ps[i]);
            i += 1;
        }
        ps = out;
        if !merged {
            return ps;
        }
    }
}

fn any_dst() -> Prefix {
    Prefix::default_route()
}

/// Windows a packet may occupy while satisfying `g` — an
/// over-approximation ("maybe" semantics: anything not expressible as
/// address windows widens to `any`).
fn guard_windows(model: &MboxModel, g: &Guard, depth: u32) -> WindowSet {
    match g {
        Guard::True
        | Guard::Not(_)
        | Guard::Oracle(_)
        | Guard::SrcPortIs(_)
        | Guard::DstPortIs(_)
        | Guard::ProtoIs(_)
        | Guard::OriginIn(_)
        | Guard::OriginIs(_) => WindowSet::any(),
        Guard::And(gs) => gs
            .iter()
            .fold(WindowSet::any(), |acc, g| acc.intersect(&guard_windows(model, g, depth))),
        Guard::Or(gs) => {
            let mut out = WindowSet::empty();
            for g in gs {
                out.union_with(&guard_windows(model, g, depth));
            }
            out
        }
        Guard::SrcIn(p) => WindowSet::window(*p, any_dst()),
        Guard::DstIn(p) => WindowSet::window(any_dst(), *p),
        Guard::SrcIs(a) => WindowSet::window(Prefix::host(*a), any_dst()),
        Guard::DstIs(a) => WindowSet::window(any_dst(), Prefix::host(*a)),
        Guard::AclMatch(name) => {
            let mut out = WindowSet::empty();
            for &(s, d) in model.acl_pairs(name).unwrap_or(&[]) {
                out.insert((s, d));
            }
            out
        }
        Guard::StateContains { state, key } => state_read_windows(model, state, *key, depth),
    }
}

/// Projects the windows of one header side into a prefix list, `None`
/// meaning unconstrained.
fn project(ws: &WindowSet, src_side: bool) -> Option<Vec<Prefix>> {
    if ws.is_any() {
        return None;
    }
    Some(ws.windows.iter().map(|&(s, d)| if src_side { s } else { d }).collect())
}

fn constrain(side_src: bool, ps: Option<Vec<Prefix>>) -> WindowSet {
    match ps {
        None => WindowSet::any(),
        Some(v) => {
            let mut out = WindowSet::empty();
            for p in v {
                if side_src {
                    out.insert((p, any_dst()));
                } else {
                    out.insert((any_dst(), p));
                }
            }
            out
        }
    }
}

/// Windows of packets that can pass a `StateContains { state, key }`
/// read: a function of the windows of packets that can *insert* into
/// the state, combined per (read key, declared key). Models containing
/// header rewrites never reach this (their summary is
/// [`ForwardSummary::Rewrite`], computed without looking at guards), so
/// insert-time headers equal guard-time headers.
fn state_read_windows(model: &MboxModel, state: &str, read_key: KeyExpr, depth: u32) -> WindowSet {
    if depth >= STATE_DEPTH_LIMIT {
        return WindowSet::any();
    }
    let Some(decl) = model.state_decl(state) else {
        return WindowSet::any();
    };
    let mut inserted = WindowSet::empty();
    for rule in &model.rules {
        if rule.actions.iter().any(|a| matches!(a, Action::Insert(s) if s == state)) {
            inserted.union_with(&guard_windows(model, &rule.guard, depth + 1));
        }
    }
    use KeyExpr::*;
    match (read_key, decl.key) {
        // Origin keys are not constrained by address windows at all.
        (Origin, _) | (_, Origin) => WindowSet::any(),
        // Pair-valued keys match exactly (Flow is direction-normalised,
        // so the reverse of an inserted pair also matches).
        (Flow, Flow) | (SrcDst, SrcDst) => {
            let mut out = inserted.clone();
            out.union_with(&inserted.reversed());
            out
        }
        // Address-valued keys: the read side's field must fall in the
        // projection of the inserting windows on the declared side.
        (SrcAddr, SrcAddr) => constrain(true, project(&inserted, true)),
        (SrcAddr, DstAddr) => constrain(true, project(&inserted, false)),
        (DstAddr, SrcAddr) => constrain(false, project(&inserted, true)),
        (DstAddr, DstAddr) => constrain(false, project(&inserted, false)),
        // Mixed pair/address combinations: some header field of the
        // passing packet equals some field of an inserted one.
        _ => {
            let mut out = constrain(true, project(&inserted, true));
            out.union_with(&constrain(true, project(&inserted, false)));
            out.union_with(&constrain(false, project(&inserted, true)));
            out.union_with(&constrain(false, project(&inserted, false)));
            out
        }
    }
}

/// Static summary of a middlebox model's emission behaviour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardSummary {
    /// Pass-through filter: the box re-emits an arrived packet with its
    /// headers unchanged iff they fall in the set, so its emission is
    /// the arrival intersected with the set.
    Filter(WindowSet),
    /// The model can rewrite or replay headers (address rewrites, state
    /// restores, cached responses): the emitted headers bear no window
    /// relation to the arrived ones, so once anything reaches the box
    /// its emission must be widened to *any* header.
    Rewrite,
}

/// Static summary of a middlebox model: how the windows it may emit
/// relate to the windows that arrive. A model that only filters yields
/// [`ForwardSummary::Filter`]; one that can rewrite or replay headers
/// yields [`ForwardSummary::Rewrite`], because after a rewrite the
/// input/output window relation is lost.
pub fn forward_summary(model: &MboxModel) -> ForwardSummary {
    for rule in &model.rules {
        for a in &rule.actions {
            if matches!(
                a,
                Action::RewriteSrc(_)
                    | Action::RewriteDst(_)
                    | Action::RewriteDstOneOf(_)
                    | Action::RewriteSrcPortFresh
                    | Action::RestoreDstFromState(_)
                    | Action::RespondFromState(_)
            ) {
                return ForwardSummary::Rewrite;
            }
        }
    }
    let mut out = WindowSet::empty();
    for rule in &model.rules {
        if rule.actions.iter().any(|a| matches!(a, Action::Forward)) {
            out.union_with(&guard_windows(model, &rule.guard, 0));
            if out.is_any() {
                break;
            }
        }
    }
    ForwardSummary::Filter(out)
}

/// The synthesized crossings of one scenario: for each directed live
/// edge, the windows packets crossing it may occupy.
#[derive(Debug, Default)]
pub struct CrossMap {
    pub cross: HashMap<(NodeId, NodeId), WindowSet>,
}

impl CrossMap {
    /// Windows crossing `from -> to` (empty if nothing can).
    pub fn windows(&self, from: NodeId, to: NodeId) -> WindowSet {
        self.cross.get(&(from, to)).cloned().unwrap_or_else(WindowSet::empty)
    }
}

/// Runs the window-propagation fixpoint for one scenario.
pub fn synthesize(net: &Network, scenario: &FailureScenario) -> CrossMap {
    let topo = &net.topo;
    let summaries: HashMap<NodeId, ForwardSummary> = topo
        .middleboxes()
        .filter(|&m| !scenario.is_failed(m))
        .map(|m| (m, forward_summary(net.model(m))))
        .collect();
    // Source widening vocabulary: the CIDR aggregate of all host /32s.
    // Widening a seed to its aggregate block only adds headers (sound)
    // and collapses per-host windows into per-subnet ones.
    let agg = aggregate_prefixes(topo.host_prefixes());
    let widen =
        |a: Address| agg.iter().copied().find(|p| p.contains(a)).unwrap_or_else(|| Prefix::host(a));
    // Per-(switch, next-hop) aggregated destination narrowing.
    let mut narrow: HashMap<(NodeId, NodeId), Vec<Prefix>> = HashMap::new();
    for (sw, node) in topo.nodes() {
        if node.kind.is_terminal() {
            continue;
        }
        let mut by_next: HashMap<NodeId, Vec<Prefix>> = HashMap::new();
        for r in net.tables.rules(sw) {
            by_next.entry(r.next).or_default().push(r.prefix);
        }
        for (next, ps) in by_next {
            narrow.insert((sw, next), aggregate_prefixes(ps));
        }
    }

    let mut cross: HashMap<(NodeId, NodeId), WindowSet> = HashMap::new();
    let mut reach: HashMap<NodeId, WindowSet> = HashMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut queued: BTreeSet<NodeId> = BTreeSet::new();
    for h in topo.hosts().filter(|&h| !scenario.is_failed(h)) {
        queue.push_back(h);
        queued.insert(h);
    }

    while let Some(v) = queue.pop_front() {
        queued.remove(&v);
        if scenario.is_failed(v) {
            continue;
        }
        let node = topo.node(v);
        // Windows this node can emit (switches are narrowed per edge
        // below instead).
        let emit: WindowSet = if node.kind.is_host() {
            let mut seed = WindowSet::empty();
            for &a in &node.addresses {
                seed.insert((widen(a), any_dst()));
            }
            seed
        } else if node.kind.is_middlebox() {
            let arrived = reach.get(&v).cloned().unwrap_or_else(WindowSet::empty);
            match summaries.get(&v) {
                Some(ForwardSummary::Filter(f)) => arrived.intersect(f),
                // A rewriting box emits headers unrelated to the
                // arrived ones (VIP→backend, NAT restore, cached
                // response), so the arrival only gates *whether* it
                // emits, never *what*.
                Some(ForwardSummary::Rewrite) if !arrived.is_empty() => WindowSet::any(),
                _ => WindowSet::empty(),
            }
        } else {
            reach.get(&v).cloned().unwrap_or_else(WindowSet::empty)
        };
        if emit.is_empty() {
            continue;
        }
        let neighbors: Vec<NodeId> = topo.live_neighbors(v, scenario).collect();
        for x in neighbors {
            let w = if node.kind.is_terminal() {
                // Entry semantics of `deliver`: direct hand-off to a
                // terminal neighbour owning the destination, injection
                // into any switch neighbour.
                if topo.node(x).kind.is_terminal() {
                    let owned = aggregate_prefixes(
                        topo.node(x).addresses.iter().copied().map(Prefix::host).collect(),
                    );
                    let mut owned_ws = WindowSet::empty();
                    for p in owned {
                        owned_ws.insert((any_dst(), p));
                    }
                    emit.intersect(&owned_ws)
                } else {
                    emit.clone()
                }
            } else {
                // Switch hop: destination narrowed by the union of
                // rules toward this neighbour.
                match narrow.get(&(v, x)) {
                    Some(ps) => {
                        let mut out = WindowSet::empty();
                        for &p in ps {
                            out.union_with(&emit.narrow_dst(p));
                        }
                        out
                    }
                    None => WindowSet::empty(),
                }
            };
            if w.is_empty() {
                continue;
            }
            let grew = cross.entry((v, x)).or_default().union_with(&w);
            if grew && !topo.node(x).kind.is_host() {
                let r = reach.entry(x).or_default();
                if r.union_with(&w) && queued.insert(x) {
                    queue.push_back(x);
                }
            }
        }
    }
    CrossMap { cross }
}

/// A partition resolved against a concrete topology, plus the contract
/// machinery: boundary edges, declared contracts (if any) and the
/// per-scenario synthesis cache.
pub struct ModularContext {
    pub partition: Partition,
    /// `NodeId::index() -> module index` (always `Some` — a validated
    /// partition covers the topology).
    module_ix: Vec<Option<usize>>,
    /// Undirected boundary (cut) link endpoints, normalised `a < b`.
    boundary: BTreeSet<(NodeId, NodeId)>,
    /// Declared contracts, already validated against the no-failure
    /// synthesis. Empty in auto mode.
    pub contracts: Vec<ModuleContract>,
    cache: Mutex<HashMap<String, Arc<CrossMap>>>,
}

impl ModularContext {
    /// Resolves a validated partition against the topology.
    pub fn resolve(
        topo: &Topology,
        partition: Partition,
    ) -> Result<ModularContext, vmn_analysis::PartitionError> {
        partition.validate(topo.nodes().map(|(_, n)| n.name.as_str()))?;
        let mut module_ix = vec![None; topo.nodes().count()];
        for (mi, m) in partition.modules.iter().enumerate() {
            for name in &m.nodes {
                // Validation has already checked every module node names
                // a real topology node.
                let id = topo.by_name(name).expect("validated partition node");
                module_ix[id.index()] = Some(mi);
            }
        }
        let mut boundary = BTreeSet::new();
        for l in topo.links() {
            if module_ix[l.a.index()] != module_ix[l.b.index()] {
                boundary.insert((l.a.min(l.b), l.a.max(l.b)));
            }
        }
        Ok(ModularContext {
            partition,
            module_ix,
            boundary,
            contracts: Vec::new(),
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// Builds the auto-partitioned context: cut on low-connectivity
    /// boundaries (bridge links between infrastructure nodes).
    pub fn auto(topo: &Topology) -> ModularContext {
        let nodes: Vec<(String, bool)> =
            topo.nodes().map(|(_, n)| (n.name.clone(), !n.kind.is_host())).collect();
        let links: Vec<(String, String)> = topo
            .links()
            .iter()
            .map(|l| (topo.node(l.a).name.clone(), topo.node(l.b).name.clone()))
            .collect();
        let partition = auto_partition(&nodes, &links);
        ModularContext::resolve(topo, partition).expect("auto partition is always valid")
    }

    pub fn module_count(&self) -> usize {
        self.partition.len()
    }

    pub fn boundary_len(&self) -> usize {
        self.boundary.len()
    }

    /// Module index of a node.
    pub fn module_of(&self, n: NodeId) -> Option<usize> {
        self.module_ix.get(n.index()).copied().flatten()
    }

    fn is_boundary(&self, a: NodeId, b: NodeId) -> bool {
        self.boundary.contains(&(a.min(b), a.max(b)))
    }

    /// Validates declared contracts against the no-failure synthesis
    /// and checks they compose, then installs them. Sound for every
    /// scenario: failures only remove behaviours, so each scenario's
    /// crossings are a subset of the no-failure crossings.
    pub fn install_contracts(
        &mut self,
        net: &Network,
        contracts: Vec<ModuleContract>,
    ) -> Result<(), ContractError> {
        // Contract module names must resolve to partition modules, and
        // no module may be declared twice — the composition check below
        // skips contract pairs with equal module names, so a duplicated
        // name would silently skip the check between the two.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for mc in &contracts {
            if !self.partition.modules.iter().any(|m| m.name == mc.module) {
                return Err(ContractError::UnknownModule { module: mc.module.clone() });
            }
            if !seen.insert(&mc.module) {
                return Err(ContractError::DuplicateModule { module: mc.module.clone() });
            }
        }
        let synth = synthesize(net, &FailureScenario::none());
        let resolve_edge = |pc: &PortContract| -> Result<(NodeId, NodeId), ContractError> {
            let unknown =
                || ContractError::UnknownEdge { from: pc.from.clone(), to: pc.to.clone() };
            let f = net.topo.by_name(&pc.from).map_err(|_| unknown())?;
            let t = net.topo.by_name(&pc.to).map_err(|_| unknown())?;
            if !self.is_boundary(f, t) {
                return Err(unknown());
            }
            Ok((f, t))
        };
        // Egress guarantees must cover the synthesized crossings.
        for mc in &contracts {
            for pc in &mc.egress {
                let (f, t) = resolve_edge(pc)?;
                let actual = synth.windows(f, t);
                if !actual.implies(&pc.windows) {
                    return Err(ContractError::Unsound {
                        from: pc.from.clone(),
                        to: pc.to.clone(),
                        window: actual.to_string(),
                    });
                }
            }
            // Ingress assumptions must also cover the synthesized
            // crossings — a module check that assumes less than what can
            // actually arrive would be unsound even if no neighbour
            // declares an egress on the edge (undeclared guarantees
            // default to the synthesis).
            for pc in &mc.ingress {
                let (f, t) = resolve_edge(pc)?;
                let actual = synth.windows(f, t);
                if !actual.implies(&pc.windows) {
                    return Err(ContractError::Unsound {
                        from: pc.from.clone(),
                        to: pc.to.clone(),
                        window: actual.to_string(),
                    });
                }
            }
        }
        // Every egress guarantee must imply the neighbouring module's
        // ingress assumption on the same directed edge (undeclared
        // assumptions default to `any`).
        for mc in &contracts {
            for pc in &mc.egress {
                for other in &contracts {
                    if other.module == mc.module {
                        continue;
                    }
                    for ic in &other.ingress {
                        if ic.from == pc.from && ic.to == pc.to && !pc.windows.implies(&ic.windows)
                        {
                            return Err(ContractError::Compose {
                                from: pc.from.clone(),
                                to: pc.to.clone(),
                            });
                        }
                    }
                }
            }
        }
        self.contracts = contracts;
        Ok(())
    }

    /// The memoized per-scenario synthesis.
    pub fn cross_for(&self, net: &Network, scenario: &FailureScenario) -> Arc<CrossMap> {
        let key = format!("{scenario:?}");
        let mut cache = match self.cache.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        cache.entry(key).or_insert_with(|| Arc::new(synthesize(net, scenario))).clone()
    }

    /// Drops all memoized syntheses (after a network swap).
    pub fn clear_cache(&self) {
        match self.cache.lock() {
            Ok(mut g) => g.clear(),
            Err(p) => p.into_inner().clear(),
        }
    }

    /// The contract fast path: `Some(())`-style `true` means the
    /// invariant provably holds under `scenario`; `false` means
    /// inconclusive (fall back to the exact engine). Only isolation
    /// invariants whose endpoints are hosts in *different* modules are
    /// attempted — both violation encodings require `dst` to receive a
    /// packet whose source header is `src`'s address, so it suffices
    /// that no window on any live edge into `dst` admits one.
    pub fn contract_holds(
        &self,
        net: &Network,
        inv: &Invariant,
        scenario: &FailureScenario,
    ) -> bool {
        let (src, dst) = match inv {
            Invariant::NodeIsolation { src, dst } | Invariant::FlowIsolation { src, dst } => {
                (*src, *dst)
            }
            _ => return false,
        };
        let topo = &net.topo;
        if !topo.node(src).kind.is_host() || !topo.node(dst).kind.is_host() {
            return false;
        }
        match (self.module_of(src), self.module_of(dst)) {
            (Some(a), Some(b)) if a != b => {}
            _ => return false,
        }
        let saddr = Prefix::host(net.host_address(src));
        let cross = self.cross_for(net, scenario);
        !topo
            .live_neighbors(dst, scenario)
            .any(|x| cross.windows(x, dst).admits_window(saddr, any_dst()))
    }

    /// The synthesized per-module contracts under no failures — the
    /// ingress assumptions and egress guarantees the engine actually
    /// uses, in declaration form (for reporting and the CLI).
    pub fn synthesized_contracts(&self, net: &Network) -> Vec<ModuleContract> {
        let synth = synthesize(net, &FailureScenario::none());
        let name = |n: NodeId| net.topo.node(n).name.clone();
        let mut out: Vec<ModuleContract> = self
            .partition
            .modules
            .iter()
            .map(|m| ModuleContract { module: m.name.clone(), ..Default::default() })
            .collect();
        for &(a, b) in &self.boundary {
            for (f, t) in [(a, b), (b, a)] {
                let windows = synth.windows(f, t);
                let (fm, tm) = (self.module_of(f), self.module_of(t));
                if let Some(fm) = fm {
                    out[fm].egress.push(PortContract {
                        from: name(f),
                        to: name(t),
                        windows: windows.clone(),
                    });
                }
                if let Some(tm) = tm {
                    out[tm].ingress.push(PortContract { from: name(f), to: name(t), windows });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{RoutingConfig, Rule};

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn filter(model: &MboxModel) -> WindowSet {
        match forward_summary(model) {
            ForwardSummary::Filter(w) => w,
            ForwardSummary::Rewrite => panic!("{}: expected a filtering summary", model.type_name),
        }
    }

    #[test]
    fn aggregate_merges_aligned_blocks() {
        let ps: Vec<Prefix> =
            (0..16).map(|h| Prefix::host(Address::from_octets([10, 1, 0, h]))).collect();
        assert_eq!(aggregate_prefixes(ps), vec![px("10.1.0.0/28")]);
        // Non-aligned singletons stay put.
        let ps = vec![px("10.0.0.1/32"), px("10.0.0.2/32")];
        assert_eq!(aggregate_prefixes(ps.clone()), ps);
        // Covered prefixes are dropped.
        let ps = vec![px("10.0.0.0/8"), px("10.1.0.0/16")];
        assert_eq!(aggregate_prefixes(ps), vec![px("10.0.0.0/8")]);
    }

    #[test]
    fn learning_firewall_summary_is_acl_closure() {
        let fw = models::learning_firewall("fw", vec![(px("10.1.0.0/16"), px("10.2.0.0/16"))]);
        let w = filter(&fw);
        assert!(!w.is_any());
        // Forward direction from the ACL…
        assert!(w.admits("10.1.0.1".parse().unwrap(), "10.2.0.1".parse().unwrap()));
        // …reverse direction through the flow-keyed state…
        assert!(w.admits("10.2.0.1".parse().unwrap(), "10.1.0.1".parse().unwrap()));
        // …and nothing else.
        assert!(!w.admits("10.3.0.1".parse().unwrap(), "10.2.0.1".parse().unwrap()));
    }

    #[test]
    fn rewriting_models_summarize_as_rewrite() {
        let nat = models::nat("nat", px("10.0.0.0/8"), "1.2.3.4".parse().unwrap());
        assert_eq!(forward_summary(&nat), ForwardSummary::Rewrite);
        let cache = models::content_cache("cache", [px("10.1.0.0/16")], vec![]);
        assert_eq!(forward_summary(&cache), ForwardSummary::Rewrite);
        let lb = models::load_balancer(
            "lb",
            "10.0.0.100".parse().unwrap(),
            vec!["10.0.0.1".parse().unwrap()],
        );
        assert_eq!(forward_summary(&lb), ForwardSummary::Rewrite);
    }

    #[test]
    fn pass_through_models_forward_everything() {
        assert!(filter(&models::gateway("gw")).is_any());
        assert!(filter(&models::idps("idps")).is_any());
    }

    #[test]
    fn acl_firewall_summary_is_exactly_the_acl() {
        let fw = models::acl_firewall("fw", vec![(px("10.1.0.0/16"), px("10.2.0.0/16"))]);
        let w = filter(&fw);
        assert!(w.admits("10.1.0.1".parse().unwrap(), "10.2.0.1".parse().unwrap()));
        // Stateless: no reverse closure.
        assert!(!w.admits("10.2.0.1".parse().unwrap(), "10.1.0.1".parse().unwrap()));
    }

    /// Regression: a rewriting box's emission must not be limited to the
    /// windows that arrived at it. Here the only headers reaching the
    /// load balancer carry `dst = VIP`, yet its rewritten emission
    /// (VIP→backend) must still be synthesized as crossing into the
    /// backend — intersecting with the arrival used to leave the
    /// backend-facing edge empty and let the contract fast path "prove"
    /// isolation the monolithic engine refutes.
    #[test]
    fn rewriting_box_widens_crossings_beyond_arrived_windows() {
        let vip: Address = "10.2.0.100".parse().unwrap();
        let backend: Address = "10.2.0.1".parse().unwrap();
        let client: Address = "10.1.0.1".parse().unwrap();
        let mut topo = Topology::new();
        let c = topo.add_host("c", client);
        let b = topo.add_host("b", backend);
        let sw1 = topo.add_switch("sw1");
        let sw2 = topo.add_switch("sw2");
        let lb = topo.add_middlebox("lb", "load-balancer", vec![vip]);
        for (x, y) in [(c, sw1), (sw1, lb), (lb, sw2), (sw2, b)] {
            topo.add_link(x, y);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        // Only VIP-destined traffic is routed toward the LB.
        tables.add_rule(sw1, Rule::new(Prefix::host(vip), lb));
        let mut net = Network::new(topo, tables);
        net.set_model(lb, models::load_balancer("load-balancer", vip, vec![backend]));

        let cross = synthesize(&net, &FailureScenario::none());
        assert!(
            cross.windows(sw1, lb).admits(client, vip),
            "VIP traffic must reach the load balancer"
        );
        assert!(
            cross.windows(sw2, b).admits(client, backend),
            "the rewritten emission must cross into the backend"
        );
    }
}
