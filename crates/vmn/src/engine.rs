//! The verification engine: slices → bounded encoding → SMT → verdicts.

use crate::bounds;
use crate::encoder::{self, EncodeError, Encoded};
use crate::invariant::Invariant;
use crate::network::Network;
use crate::policy::{group_by_symmetry, PolicyClasses};
use crate::slice::compute_slice;
use crate::trace::Trace;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vmn_net::{FailureScenario, NetError, NodeId};
use vmn_smt::{SatResult, SolverStats};

/// Outcome of verifying one invariant.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// No reachable violation in any checked failure scenario.
    Holds,
    /// A violation witness was found (with the scenario it occurs in).
    Violated { trace: Trace, scenario: FailureScenario },
}

impl Verdict {
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// Verification report for one invariant.
#[derive(Clone, Debug)]
pub struct Report {
    pub invariant: Invariant,
    pub verdict: Verdict,
    /// Wall-clock time spent verifying this invariant. Zero for inherited
    /// reports, so summing `elapsed` over a run counts each solver run
    /// exactly once.
    pub elapsed: Duration,
    /// Number of failure scenarios checked (stops early on violation).
    pub scenarios_checked: usize,
    /// Terminals in the largest node set encoded for this invariant:
    /// the union of the per-scenario slices in the incremental engine,
    /// the max over scenarios in the from-scratch baseline (equal
    /// whenever the scenarios' slices nest, and never smaller in the
    /// incremental engine).
    pub encoded_nodes: usize,
    /// Largest trace bound used across this invariant's encodings
    /// (the max over planned scenarios, in both engines — the baseline
    /// reports the max over the scenarios it actually checked, so the
    /// values coincide whenever both engines sweep the same prefix).
    pub steps: usize,
    /// Whether the verdict was inherited from a symmetric representative
    /// instead of being verified directly.
    pub inherited: bool,
    /// Solver work attributable to this invariant's checks alone —
    /// per-check stats deltas off the (possibly shared, cross-invariant)
    /// solver session. Zero for inherited reports.
    pub solver: SolverStats,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Verify on slices (§4) instead of the whole network.
    pub use_slices: bool,
    /// Extra steps added to the computed trace bound.
    pub slack: usize,
    /// Overrides the computed trace bound entirely.
    pub steps_override: Option<usize>,
    /// Policy classes, if the operator knows them; otherwise they are
    /// computed by partition refinement.
    pub policy_hint: Option<Vec<Vec<NodeId>>>,
    /// Reuse one solver across the failure scenarios of an invariant via
    /// per-scenario activation literals (assumption-based solving).
    /// Disable to rebuild a fresh solver per scenario — the from-scratch
    /// baseline the `scenario_sweep` bench compares against.
    pub incremental: bool,
    /// Reuse live solver sessions *across invariants*: `verify` checks a
    /// session out of the verifier's pool keyed by (node-set, trace
    /// bound), registers the invariant behind an activation literal on
    /// the session's persistent solver, and returns the session — with
    /// everything it learnt — for the next invariant with the same key.
    /// Disable to build a fresh solver stack per invariant — the baseline
    /// the `invariant_sweep` bench compares against. Only meaningful when
    /// `incremental` is on.
    pub reuse_sessions: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            use_slices: true,
            slack: bounds::DEFAULT_SLACK,
            steps_override: None,
            policy_hint: None,
            incremental: true,
            reuse_sessions: true,
        }
    }
}

impl VerifyOptions {
    /// Whole-network verification (the baseline the paper compares
    /// against in Figures 7–9).
    pub fn whole_network() -> VerifyOptions {
        VerifyOptions { use_slices: false, ..VerifyOptions::default() }
    }
}

/// Errors surfaced by verification.
#[derive(Clone, Debug)]
pub enum VerifyError {
    Net(NetError),
    Encode(EncodeError),
    InvalidNetwork(String),
}

impl From<NetError> for VerifyError {
    fn from(e: NetError) -> Self {
        VerifyError::Net(e)
    }
}

impl From<EncodeError> for VerifyError {
    fn from(e: EncodeError) -> Self {
        VerifyError::Encode(e)
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Net(e) => write!(f, "{e}"),
            VerifyError::Encode(e) => write!(f, "{e}"),
            VerifyError::InvalidNetwork(s) => write!(f, "invalid network: {s}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Key of a solver session: the encoded node set and the trace bound.
/// Two invariants with the same key can share one skeleton, solver and
/// learnt-clause database.
type SessionKey = (Vec<NodeId>, usize);

/// Idle sessions kept per key; checkout pops, checkin pushes (so under
/// `verify_all` at most one session per worker thread exists per key, and
/// stragglers beyond the cap are simply dropped).
const MAX_POOLED_SESSIONS: usize = 8;

/// A session is retired (dropped instead of pooled) once its solver has
/// accumulated this many conflicts. Re-entering a lightly-used session
/// saves the whole skeleton encoding and shares learnt skeleton lemmas;
/// a session that has already absorbed a heavyweight search carries a
/// large learnt database and a hot-but-foreign activity profile that
/// measurably *slow down* the next invariant, so past this point a fresh
/// stack is the better warm-up.
const SESSION_RETIRE_CONFLICTS: u64 = 10_000;

/// The VMN verifier for one network.
pub struct Verifier<'n> {
    net: &'n Network,
    options: VerifyOptions,
    policy: PolicyClasses,
    /// Live solver sessions (scenario-/invariant-free skeletons plus
    /// everything registered on them so far), keyed by (node-set, trace
    /// bound). `verify` checks a session out, solves on it, and returns
    /// it; `verify_all` workers thereby share warmed-up solver state
    /// across invariants instead of rebuilding a stack per representative.
    sessions: Mutex<HashMap<SessionKey, Vec<Encoded>>>,
}

impl<'n> Verifier<'n> {
    pub fn new(net: &'n Network, options: VerifyOptions) -> Result<Verifier<'n>, VerifyError> {
        net.validate().map_err(VerifyError::InvalidNetwork)?;
        let policy = match &options.policy_hint {
            Some(groups) => PolicyClasses::from_groups(groups.clone()),
            None => PolicyClasses::compute(net),
        };
        Ok(Verifier { net, options, policy, sessions: Mutex::new(HashMap::new()) })
    }

    pub fn policy(&self) -> &PolicyClasses {
        &self.policy
    }

    /// Number of idle sessions currently pooled (diagnostics/tests).
    pub fn pooled_sessions(&self) -> usize {
        self.sessions.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Checks a session for `(nodes, k)` out of the pool, building the
    /// skeleton only on a miss (or always, when session reuse is off).
    fn checkout_session(&self, nodes: &[NodeId], k: usize) -> Result<Encoded, VerifyError> {
        if self.options.reuse_sessions {
            let mut pool = self.sessions.lock().unwrap();
            if let Some(enc) = pool.get_mut(&(nodes.to_vec(), k)).and_then(Vec::pop) {
                return Ok(enc);
            }
        }
        Ok(encoder::encode_skeleton(self.net, nodes, k)?)
    }

    /// Returns a session to the pool for the next invariant with the same
    /// key. Worn-out sessions (see [`SESSION_RETIRE_CONFLICTS`]) and
    /// sessions beyond the per-key cap are dropped.
    fn checkin_session(&self, key: SessionKey, enc: Encoded) {
        if !self.options.reuse_sessions || enc.ctx.stats().conflicts > SESSION_RETIRE_CONFLICTS {
            return;
        }
        let mut pool = self.sessions.lock().unwrap();
        let slot = pool.entry(key).or_default();
        if slot.len() < MAX_POOLED_SESSIONS {
            slot.push(enc);
        }
    }

    /// The per-scenario verification plan: slice (or whole terminal set)
    /// and trace bound.
    fn plan(
        &self,
        inv: &Invariant,
        scenario: &FailureScenario,
    ) -> Result<(Vec<NodeId>, usize), VerifyError> {
        let mut nodes: Vec<NodeId> = if self.options.use_slices {
            compute_slice(self.net, scenario, inv, &self.policy)?
        } else {
            self.net.topo.terminals().collect()
        };
        nodes.sort();
        nodes.dedup();
        let k = self.options.steps_override.unwrap_or_else(|| {
            bounds::trace_bound(self.net, scenario, inv, &nodes, self.options.slack)
        });
        Ok((nodes, k))
    }

    /// Verifies a single invariant across all configured failure
    /// scenarios, stopping at the first violation.
    ///
    /// By default (`options.incremental`) the sweep is *incremental*: the
    /// per-scenario slices are united into one node set, one encoder holds
    /// the scenario-independent formula at the largest required trace
    /// bound, each scenario contributes only an activation literal plus
    /// its liveness/delivery facts, and each check is one assumption-based
    /// call on the persistent solver — clauses learnt refuting scenario
    /// `n` carry over to scenario `n+1`. (A union of sufficient slices is
    /// itself sufficient, and a larger trace bound only widens the
    /// violation search, so verdicts match the per-scenario baseline;
    /// the differential tests replay every extracted witness on the
    /// concrete simulator as an additional safeguard.)
    ///
    /// With `options.reuse_sessions` (the default) the solver session
    /// additionally persists *across invariants*: the skeleton is checked
    /// out of a pool keyed by (node-set, trace bound), this invariant's
    /// violation formula is registered behind an activation literal, and
    /// the session — with every clause learnt so far — is returned for
    /// the next invariant with the same key.
    pub fn verify(&self, inv: &Invariant) -> Result<Report, VerifyError> {
        let start = Instant::now();
        let scenarios = self.net.all_scenarios();
        let report = |verdict, scenarios_checked, encoded_nodes, steps, solver| Report {
            invariant: inv.clone(),
            verdict,
            elapsed: start.elapsed(),
            scenarios_checked,
            encoded_nodes,
            steps,
            inherited: false,
            solver,
        };

        if !self.options.incremental {
            // From-scratch baseline: fresh slice, encoder and solver per
            // scenario (what the `scenario_sweep` bench compares against).
            let mut scenarios_checked = 0;
            let mut encoded_nodes = 0;
            let mut steps_used = 0;
            let mut solver = SolverStats::default();
            for scenario in scenarios {
                scenarios_checked += 1;
                let (nodes, k) = self.plan(inv, &scenario)?;
                encoded_nodes = encoded_nodes.max(nodes.len());
                steps_used = steps_used.max(k);
                let mut enc = encoder::encode(self.net, &scenario, &nodes, inv, k)?;
                let sat = enc.ctx.check();
                solver = solver + enc.ctx.stats();
                if sat == SatResult::Sat {
                    let trace = Trace::extract(&mut enc);
                    let verdict = Verdict::Violated { trace, scenario };
                    return Ok(report(
                        verdict,
                        scenarios_checked,
                        encoded_nodes,
                        steps_used,
                        solver,
                    ));
                }
            }
            return Ok(report(
                Verdict::Holds,
                scenarios_checked,
                encoded_nodes,
                steps_used,
                solver,
            ));
        }

        // Plan the scenarios up front, then solve the whole sweep on one
        // persistent solver session over the union of the slices. A plan
        // error stops planning but must not mask a violation in an
        // *earlier* scenario (the baseline plans lazily and would have
        // reported it first), so the planned prefix is still checked
        // before the error is surfaced.
        let mut union_nodes: Vec<NodeId> = Vec::new();
        let mut k = 1;
        let mut planned = 0;
        let mut plan_error = None;
        for scenario in &scenarios {
            match self.plan(inv, scenario) {
                Ok((nodes, ks)) => {
                    union_nodes.extend(nodes);
                    k = k.max(ks);
                    planned += 1;
                }
                Err(e) => {
                    plan_error = Some(e);
                    break;
                }
            }
        }
        if planned > 0 {
            union_nodes.sort();
            union_nodes.dedup();
            // The session may have been warmed up by other invariants with
            // the same (node-set, bound) key; the stats delta below still
            // attributes only this invariant's checks to its report.
            let mut enc = self.checkout_session(&union_nodes, k)?;
            let stats_before = enc.ctx.stats();
            let mut scenarios_checked = 0;
            let mut outcome: Result<Option<(Trace, FailureScenario)>, VerifyError> = Ok(None);
            for scenario in scenarios.into_iter().take(planned) {
                scenarios_checked += 1;
                match enc.check_invariant_scenario(self.net, inv, &scenario) {
                    Ok(SatResult::Sat) => {
                        outcome = Ok(Some((Trace::extract(&mut enc), scenario)));
                        break;
                    }
                    Ok(SatResult::Unsat) => {}
                    Err(e) => {
                        outcome = Err(e.into());
                        break;
                    }
                }
            }
            let solver = enc.ctx.stats().delta_since(&stats_before);
            match outcome {
                // A session whose check errored may hold a half-registered
                // scenario encoding; drop it instead of pooling, so later
                // invariants with the same key start from a clean skeleton.
                Err(e) => return Err(e),
                Ok(found) => {
                    self.checkin_session((union_nodes.clone(), k), enc);
                    match found {
                        Some((trace, scenario)) => {
                            let verdict = Verdict::Violated { trace, scenario };
                            return Ok(report(
                                verdict,
                                scenarios_checked,
                                union_nodes.len(),
                                k,
                                solver,
                            ));
                        }
                        None if plan_error.is_none() => {
                            return Ok(report(
                                Verdict::Holds,
                                scenarios_checked,
                                union_nodes.len(),
                                k,
                                solver,
                            ));
                        }
                        None => {}
                    }
                }
            }
        }
        Err(plan_error.expect("no-error case returned above; scenarios is never empty"))
    }

    /// Verifies a set of invariants, exploiting symmetry (one solver run
    /// per symmetry group, §4.2) and thread-level parallelism.
    ///
    /// Returns one report per input invariant, in input order.
    pub fn verify_all(
        &self,
        invariants: &[Invariant],
        threads: usize,
    ) -> Result<Vec<Report>, VerifyError> {
        let groups = group_by_symmetry(self.net, &self.policy, invariants);
        let reps: Vec<usize> = groups.iter().map(|g| g[0]).collect();

        // Verify representatives (possibly in parallel).
        let rep_reports: Vec<Result<Report, VerifyError>> = if threads <= 1 || reps.len() <= 1 {
            reps.iter().map(|&i| self.verify(&invariants[i])).collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let results: Vec<std::sync::Mutex<Option<Result<Report, VerifyError>>>> =
                reps.iter().map(|_| std::sync::Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads.min(reps.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if i >= reps.len() {
                            break;
                        }
                        let r = self.verify(&invariants[reps[i]]);
                        *results[i].lock().unwrap() = Some(r);
                    });
                }
            });
            results
                .into_iter()
                .map(|m| m.into_inner().unwrap().expect("worker filled result"))
                .collect()
        };

        // Distribute verdicts to symmetric members.
        let mut out: Vec<Option<Report>> = (0..invariants.len()).map(|_| None).collect();
        for (g_idx, group) in groups.iter().enumerate() {
            let rep_report = match &rep_reports[g_idx] {
                Ok(r) => r.clone(),
                // Propagate the representative's real error (encode errors
                // included — `EncodeError` is cloneable).
                Err(e) => return Err(e.clone()),
            };
            for (pos, &inv_idx) in group.iter().enumerate() {
                let mut r = rep_report.clone();
                r.invariant = invariants[inv_idx].clone();
                r.inherited = pos > 0;
                if r.inherited {
                    // Inherited verdicts cost no solver run of their own:
                    // zero the cost fields so summing over a run's reports
                    // counts each wall-clock second (and each conflict)
                    // exactly once.
                    r.elapsed = Duration::ZERO;
                    r.solver = SolverStats::default();
                }
                out[inv_idx] = Some(r);
            }
        }
        Ok(out.into_iter().map(|r| r.expect("all invariants covered")).collect())
    }

    /// Convenience: is `dst` reachable from `src`? (The dual of simple
    /// isolation: reachability holds iff the isolation invariant is
    /// violated.)
    pub fn can_reach(&self, src: NodeId, dst: NodeId) -> Result<bool, VerifyError> {
        let inv = Invariant::NodeIsolation { src, dst };
        Ok(!self.verify(&inv)?.verdict.holds())
    }
}

impl<'n> Verifier<'n> {
    /// Checks a *pipeline invariant* (§2.3): packets from `src` to `dst`
    /// must traverse the given middlebox-type sequence on the static
    /// datapath. This is the invariant family the paper delegates to
    /// static-datapath tools; the checker lives in `vmn-net` and is
    /// surfaced here so both §2.1 invariant classes share one entry point.
    ///
    /// Checked under every configured failure scenario; returns the first
    /// violation found.
    pub fn check_pipeline(
        &self,
        spec: &vmn_net::PipelineSpec,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Option<(vmn_net::PipelineViolation, FailureScenario)>, VerifyError> {
        for scenario in self.net.all_scenarios() {
            let tf = vmn_net::TransferFunction::new(&self.net.topo, &self.net.tables, &scenario);
            for &addr in &self.net.topo.node(dst).addresses {
                if let Err(v) = spec.check(&tf, src, addr).map_err(VerifyError::Net)? {
                    return Ok(Some((v, scenario)));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{PipelineSpec, Prefix, RoutingConfig, Rule, Topology};

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn pipelined(with_backup: bool) -> (Network, NodeId, NodeId) {
        let mut topo = Topology::new();
        let src = topo.add_host("src", "8.8.8.8".parse().unwrap());
        let dst = topo.add_host("dst", "10.0.0.5".parse().unwrap());
        let sw = topo.add_switch("sw");
        let fw1 = topo.add_middlebox("fw1", "stateful-firewall", vec![]);
        let fw2 = topo.add_middlebox("fw2", "stateful-firewall", vec![]);
        for n in [src, dst, fw1, fw2] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &vmn_net::FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, fw1).with_priority(20));
        if with_backup {
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, fw2).with_priority(10));
        }
        let mut net = Network::new(topo, tables);
        let acl = vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))];
        net.set_model(fw1, models::learning_firewall("stateful-firewall", acl.clone()));
        net.set_model(fw2, models::learning_firewall("stateful-firewall", acl));
        net.add_scenario(vmn_net::FailureScenario::nodes([fw1]));
        (net, src, dst)
    }

    #[test]
    fn pipeline_holds_with_backup_steering() {
        let (net, src, dst) = pipelined(true);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let spec = PipelineSpec::new(["stateful-firewall"]);
        assert!(v.check_pipeline(&spec, src, dst).unwrap().is_none());
    }

    #[test]
    fn pipeline_violated_without_backup_under_failure() {
        let (net, src, dst) = pipelined(false);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let spec = PipelineSpec::new(["stateful-firewall"]);
        let (violation, scenario) =
            v.check_pipeline(&spec, src, dst).unwrap().expect("bypass found");
        assert_eq!(violation.missing, "stateful-firewall");
        assert_eq!(scenario.fault_count(), 1, "only the failure scenario bypasses");
    }

    #[test]
    fn steps_override_is_respected() {
        let (net, src, dst) = pipelined(true);
        let opts = VerifyOptions { steps_override: Some(3), ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let r = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(r.steps, 3);
    }

    #[test]
    fn sessions_are_pooled_and_reused_across_invariants() {
        let (net, src, dst) = pipelined(true);
        // Pin the bound so both invariant kinds share a session key.
        let opts = VerifyOptions { steps_override: Some(4), ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        assert_eq!(v.pooled_sessions(), 0);
        let r1 = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "the session returns to the pool");
        let r2 = v.verify(&Invariant::DataIsolation { origin: src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "the second invariant re-entered the same session");
        assert_eq!(r1.verdict.holds(), r2.verdict.holds());
        // Per-invariant attribution: each report carries only its own
        // solver work, not the session's cumulative counters.
        assert!(r1.solver.decisions + r1.solver.propagations > 0);
        assert!(r2.solver.decisions + r2.solver.propagations > 0);

        // With reuse disabled, nothing is pooled.
        let opts =
            VerifyOptions { steps_override: Some(4), reuse_sessions: false, ..Default::default() };
        let v2 = Verifier::new(&net, opts).unwrap();
        v2.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v2.pooled_sessions(), 0);
    }

    #[test]
    fn session_reuse_matches_fresh_stacks() {
        let (net, src, dst) = pipelined(false);
        let invs = [
            Invariant::NodeIsolation { src, dst },
            Invariant::NodeIsolation { src: dst, dst: src },
            Invariant::DataIsolation { origin: src, dst },
        ];
        let pooled =
            Verifier::new(&net, VerifyOptions { steps_override: Some(4), ..Default::default() })
                .unwrap();
        let fresh = Verifier::new(
            &net,
            VerifyOptions { steps_override: Some(4), reuse_sessions: false, ..Default::default() },
        )
        .unwrap();
        for inv in &invs {
            let got = pooled.verify(inv).unwrap();
            let want = fresh.verify(inv).unwrap();
            assert_eq!(got.verdict.holds(), want.verdict.holds(), "{inv}");
            assert_eq!(got.scenarios_checked, want.scenarios_checked, "{inv}");
        }
    }

    #[test]
    fn inherited_reports_carry_no_elapsed_or_solver_cost() {
        let (net, src, dst) = pipelined(true);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        // Two flow-isolation invariants that are symmetric by construction
        // would need a symmetric pair; instead verify the same invariant
        // twice — symmetry groups duplicates, so the second is inherited.
        let inv = Invariant::NodeIsolation { src, dst };
        let reports = v.verify_all(&[inv.clone(), inv], 1).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(!reports[0].inherited);
        assert!(reports[1].inherited);
        assert!(reports[0].elapsed > Duration::ZERO);
        assert_eq!(reports[1].elapsed, Duration::ZERO, "inherited elapsed must not double-count");
        assert_eq!(reports[1].solver.decisions, 0);
        assert_eq!(reports[1].solver.propagations, 0);
    }

    #[test]
    fn baseline_steps_is_max_over_scenarios() {
        // Deny-all firewall without a backup: the invariant holds on the
        // no-failure scenario (longer path through fw1, larger bound) and
        // is violated under fw1's failure (direct delivery, smaller
        // bound). The baseline must report the *max* bound over the
        // checked scenarios — not the last one — so its report stays
        // comparable with the incremental engine's.
        let (mut net, src, dst) = pipelined(false);
        for name in ["fw1", "fw2"] {
            let fw = net.topo.by_name(name).unwrap();
            net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));
        }
        let inv = Invariant::NodeIsolation { src, dst };
        let inc = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let base = Verifier::new(&net, VerifyOptions { incremental: false, ..Default::default() })
            .unwrap();
        let ri = inc.verify(&inv).unwrap();
        let rb = base.verify(&inv).unwrap();
        assert!(!rb.verdict.holds(), "failure must bypass the dead firewall");
        assert_eq!(rb.scenarios_checked, 2, "violation found in the failure scenario");
        assert_eq!(rb.steps, ri.steps, "baseline bound must be the max over scenarios");
        assert_eq!(rb.encoded_nodes, ri.encoded_nodes);
    }
}
