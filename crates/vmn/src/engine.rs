//! The verification engine: slices → bounded encoding → SMT → verdicts.

use crate::bounds;
use crate::encoder::{self, EncodeError, Encoded};
use crate::invariant::Invariant;
use crate::network::Network;
use crate::policy::{group_by_symmetry, PolicyClasses};
use crate::slice::{cluster_slices, compute_slice, first_stateful_middlebox, stateless_slice};
use crate::trace::{StepKind, Trace, TraceStep};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use vmn_analysis::{ContractError, ModuleContract, Partition, TouchSet};
use vmn_bdd::dataplane::{DataplaneError, Outcome, Query};
use vmn_bdd::{BddStats, Dataplane};
use vmn_check::CertificateBundle;
use vmn_net::{FailureScenario, NetError, NodeId};
use vmn_smt::{SatResult, SolverStats};

/// Outcome of verifying one invariant.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// No reachable violation in any checked failure scenario.
    Holds,
    /// A violation witness was found (with the scenario it occurs in).
    Violated { trace: Trace, scenario: FailureScenario },
}

impl Verdict {
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// Verification report for one invariant.
#[derive(Clone, Debug)]
pub struct Report {
    pub invariant: Invariant,
    pub verdict: Verdict,
    /// Wall-clock time spent verifying this invariant. Zero for inherited
    /// reports, so summing `elapsed` over a run counts each solver run
    /// exactly once.
    pub elapsed: Duration,
    /// Number of failure scenarios checked (stops early on violation).
    pub scenarios_checked: usize,
    /// Terminals in the largest node set *actually encoded* for this
    /// invariant: the largest encoded cluster's slice union in the
    /// incremental engine (the union of all per-scenario slices when
    /// clustering collapses to one cluster), the max over checked
    /// scenarios in the from-scratch baseline (equal whenever the
    /// scenarios' slices nest, and never smaller in the incremental
    /// engine).
    pub encoded_nodes: usize,
    /// Largest trace bound used across this invariant's encodings — the
    /// max over the scenario clusters actually encoded (incremental) or
    /// the scenarios actually checked (baseline), so the values coincide
    /// whenever both engines sweep the same prefix.
    pub steps: usize,
    /// Whether the verdict was inherited from a symmetric representative
    /// instead of being verified directly.
    pub inherited: bool,
    /// Solver work attributable to this invariant's checks alone —
    /// per-check stats deltas off the (possibly shared, cross-invariant)
    /// solver session. Zero for inherited reports.
    pub solver: SolverStats,
    /// Machine-checkable certificate of the verdict, present when
    /// [`VerifyOptions::emit_proofs`] is on: one proof session per solver
    /// session this invariant's sweep touched, each holding the session's
    /// full clause derivation log plus *this invariant's* check records
    /// (UNSAT derivations for refuted scenarios, models for violations).
    /// Validated by the independent `vmn_check` crate — see
    /// [`vmn_check::check_bundle`]. `None` when proofs are off and for
    /// inherited reports (the representative carries the certificate).
    pub certificate: Option<CertificateBundle>,
    /// How many of `scenarios_checked` each backend answered. Inherited
    /// reports keep the representative's counts (they describe the
    /// verdict's provenance, like `scenarios_checked`), so per-backend
    /// totals should sum over non-inherited reports only.
    pub smt_scenarios: usize,
    pub bdd_scenarios: usize,
    /// Scenarios answered by the modular engine's contract fast path
    /// (synthesized boundary windows prove the isolation invariant holds
    /// without encoding anything). Always zero when
    /// [`VerifyOptions::partition`] is [`PartitionMode::Off`].
    pub contract_scenarios: usize,
    /// BDD manager work attributable to this invariant's fast-path checks
    /// (stats deltas off the verifier's shared dataplane), the analogue
    /// of `solver` for the second backend. Zero for inherited reports and
    /// all-SMT sweeps.
    pub bdd: BddStats,
}

/// Which engine answers a scenario's reachability question.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Route per (slice, scenario): stateless slices — pure forwarding,
    /// ACLs and classification oracles — go to the BDD dataplane (no
    /// solver session, microseconds); anything touching mutable middlebox
    /// state takes the SMT pipeline. When certificates are requested the
    /// SMT path is used throughout (the BDD backend emits no proofs).
    #[default]
    Auto,
    /// Everything on the SMT pipeline (the pre-fast-path behaviour).
    Smt,
    /// Everything on the BDD dataplane; a stateful slice is a hard
    /// [`VerifyError::Bdd`], never a silent fallback.
    Bdd,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Verify on slices (§4) instead of the whole network.
    pub use_slices: bool,
    /// Extra steps added to the computed trace bound.
    pub slack: usize,
    /// Overrides the computed trace bound entirely.
    pub steps_override: Option<usize>,
    /// Policy classes, if the operator knows them; otherwise they are
    /// computed by partition refinement.
    pub policy_hint: Option<Vec<Vec<NodeId>>>,
    /// Reuse one solver across the failure scenarios of an invariant via
    /// per-scenario activation literals (assumption-based solving).
    /// Disable to rebuild a fresh solver per scenario — the from-scratch
    /// baseline the `scenario_sweep` bench compares against.
    pub incremental: bool,
    /// Reuse live solver sessions *across invariants*: `verify` checks a
    /// session out of the verifier's pool keyed by (node-set, trace
    /// bound), registers the invariant behind an activation literal on
    /// the session's persistent solver, and returns the session — with
    /// everything it learnt — for the next invariant with the same key.
    /// Disable to build a fresh solver stack per invariant — the baseline
    /// the `invariant_sweep` bench compares against. Only meaningful when
    /// `incremental` is on.
    pub reuse_sessions: bool,
    /// Slice-similarity threshold for the incremental sweep's scenario
    /// clustering (Jaccard, in `[0, 1]`): scenarios whose slices overlap
    /// at least this much share one encoder/solver session; divergent
    /// ones get their own, smaller session. `0.0` degenerates to the
    /// single union-of-all-slices sweep, `1.0` to one session per
    /// distinct slice (identical slices still share). Only meaningful
    /// when `incremental` is on. Values are clamped to `[0, 1]`.
    pub cluster_threshold: f64,
    /// Record a DRAT-style proof log on every solver session and attach a
    /// certificate to each report ([`Report::certificate`]), validatable
    /// by the independent `vmn_check` crate (`vmn-cli check`). Off by
    /// default: logging costs memory proportional to the clauses learnt,
    /// and the verdict paths are identical either way.
    pub emit_proofs: bool,
    /// Which backend answers each (slice, scenario) — see [`Backend`].
    pub backend: Backend,
    /// Modular verification — see [`PartitionMode`]. With a partition
    /// installed, cross-module isolation invariants are first tried
    /// against the synthesized boundary contracts; scenarios the
    /// contracts prove are counted in [`Report::contract_scenarios`] and
    /// skip encoding entirely. Anything inconclusive falls back to the
    /// exact engine, so verdicts and witnesses are identical to
    /// [`PartitionMode::Off`] by construction.
    pub partition: PartitionMode,
}

/// How the topology is partitioned into modules for modular
/// verification.
#[derive(Clone, Debug, Default)]
pub enum PartitionMode {
    /// Monolithic verification (the default).
    #[default]
    Off,
    /// Partition with the auto-partitioner
    /// ([`vmn_analysis::auto_partition`]): cut on low-connectivity
    /// boundaries (bridge links between infrastructure nodes). Boundary
    /// contracts are synthesized, so composition holds by construction.
    Auto,
    /// An operator-supplied partition, optionally with declared
    /// per-module contracts. Declared contracts are validated against
    /// the synthesized crossings at construction time — an
    /// under-approximating declaration surfaces as
    /// [`VerifyError::Contract`], never a silent pass — and checked to
    /// compose (every egress guarantee implies the neighbouring
    /// module's ingress assumption).
    Explicit { partition: Partition, contracts: Vec<ModuleContract> },
}

/// Default Jaccard threshold for scenario clustering: slices within one
/// "failure family" (shared endpoints plus mostly-shared middleboxes)
/// typically overlap well above this, so nesting workloads keep the
/// single-union sweep, while genuinely divergent slices split off.
pub const DEFAULT_CLUSTER_THRESHOLD: f64 = 0.4;

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            use_slices: true,
            slack: bounds::DEFAULT_SLACK,
            steps_override: None,
            policy_hint: None,
            incremental: true,
            reuse_sessions: true,
            cluster_threshold: DEFAULT_CLUSTER_THRESHOLD,
            emit_proofs: false,
            backend: Backend::Auto,
            partition: PartitionMode::Off,
        }
    }
}

impl VerifyOptions {
    /// Whole-network verification (the baseline the paper compares
    /// against in Figures 7–9).
    pub fn whole_network() -> VerifyOptions {
        VerifyOptions { use_slices: false, ..VerifyOptions::default() }
    }
}

/// Errors surfaced by verification.
#[derive(Clone, Debug)]
pub enum VerifyError {
    Net(NetError),
    Encode(EncodeError),
    InvalidNetwork(String),
    /// A declared module contract was rejected: unsound against the
    /// synthesized crossings, failing to compose with a neighbour's
    /// assumption, or naming a non-boundary edge.
    Contract(ContractError),
    /// The BDD fast path could not (or must not) answer: a forced
    /// `Backend::Bdd` on a stateful slice or with certificates requested,
    /// or a dataplane-level failure such as witness reconstruction.
    Bdd(String),
}

impl From<NetError> for VerifyError {
    fn from(e: NetError) -> Self {
        VerifyError::Net(e)
    }
}

impl From<EncodeError> for VerifyError {
    fn from(e: EncodeError) -> Self {
        VerifyError::Encode(e)
    }
}

impl From<ContractError> for VerifyError {
    fn from(e: ContractError) -> Self {
        VerifyError::Contract(e)
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Net(e) => write!(f, "{e}"),
            VerifyError::Encode(e) => write!(f, "{e}"),
            VerifyError::InvalidNetwork(s) => write!(f, "invalid network: {s}"),
            VerifyError::Contract(e) => write!(f, "modular contract: {e}"),
            VerifyError::Bdd(s) => write!(f, "bdd backend: {s}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Key of a solver session: the encoded node set and the trace bound.
/// Two invariants with the same key can share one skeleton, solver and
/// learnt-clause database.
type SessionKey = (Vec<NodeId>, usize);

/// Idle sessions kept per key; checkout pops, checkin pushes (so under
/// `verify_all` at most one session per worker thread exists per key, and
/// stragglers beyond the cap are simply dropped).
const MAX_POOLED_SESSIONS: usize = 8;

/// EWMA weight of the newest cost sample in the pool's per-key model.
const COST_EWMA_ALPHA: f64 = 0.5;

/// Decay applied to a stale warm-cost estimate on every *fresh* sweep of
/// a key whose prediction currently blocks warmed starts (see
/// [`KeyCost::record`]): pulls the estimate toward observed fresh costs
/// so the model can re-explore instead of ratcheting shut forever.
const WARM_RECOVERY_ALPHA: f64 = 0.25;

/// A re-entered session that has accumulated this many conflicts *since
/// its last scrub* gets its search heuristics (activities, phases) reset
/// at checkout: past this point the profile is tuned to a foreign
/// heavyweight query and degrades the next search, while the learnt
/// skeleton/scenario lemmas remain worth keeping (PR 3 retired such
/// sessions outright and forfeited both).
const SCRUB_SEARCH_CONFLICTS: u64 = 10_000;

/// A warmed session is retired once its observed per-invariant cost
/// exceeds a fresh stack's by this factor. Below it, re-entering wins
/// (the skeleton encoding is saved and skeleton/scenario lemmas are
/// shared); above it, the warmed solver's foreign learnt database and
/// activity profile are predicted to cost more than they save.
const WARM_LOSS_MARGIN: f64 = 1.25;

/// Per-key cost model: exponentially-weighted averages of the solver
/// work one invariant's sweep costs on this key, split by whether the
/// sweep ran on a pool-warmed session or a freshly built stack. Costs
/// are derived from the per-check [`SolverStats`] deltas (conflicts
/// weighted heavily, propagations lightly — see [`session_cost`]).
#[derive(Clone, Copy, Debug, Default)]
struct KeyCost {
    fresh: Option<f64>,
    warm: Option<f64>,
}

impl KeyCost {
    fn record(&mut self, warmed: bool, cost: f64) {
        let slot = if warmed { &mut self.warm } else { &mut self.fresh };
        *slot = Some(match *slot {
            None => cost,
            Some(prev) => prev + COST_EWMA_ALPHA * (cost - prev),
        });
        // While the model predicts warm losses, no warmed sweep ever runs
        // on this key, so the warm estimate could never be contradicted —
        // a one-way ratchet. Decay the stale warm estimate toward each
        // fresh observation instead: after a few fresh sweeps the
        // prediction re-opens and the next warmed sweep re-measures the
        // truth (its downside is bounded — one sweep).
        if !warmed && !self.warm_predicted_to_win() {
            let warm = self.warm.expect("prediction requires a warm estimate");
            self.warm = Some(warm + WARM_RECOVERY_ALPHA * (cost - warm));
        }
    }

    /// Whether a warmed session is predicted to beat a fresh stack for
    /// the next invariant on this key. Optimistic until evidence exists
    /// both ways: the first warmed sweep on a key is the experiment that
    /// produces the warm estimate (its downside is bounded — one sweep —
    /// while the blind cutoff this model replaces forfeited the win on
    /// every heavyweight key forever).
    fn warm_predicted_to_win(&self) -> bool {
        match (self.fresh, self.warm) {
            (Some(fresh), Some(warm)) => warm <= fresh * WARM_LOSS_MARGIN,
            _ => true,
        }
    }
}

/// Scalar cost of one invariant's sweep on a session, from its
/// [`SolverStats`] delta: conflicts dominate solver wall-clock; the
/// propagation term keeps pure-propagation sweeps comparable.
fn session_cost(delta: &SolverStats) -> f64 {
    delta.conflicts as f64 + delta.propagations as f64 / 256.0
}

/// The verifier's pool of live solver sessions plus the per-key cost
/// model driving retire/pool decisions.
///
/// All locking recovers from poisoning: both maps are plain caches whose
/// invariants hold after any partial mutation (a pushed-or-not session, a
/// half-updated EWMA), so a worker thread that panicked mid-`verify_all`
/// must not wedge every later verify on this verifier.
struct SessionPool {
    idle: Mutex<HashMap<SessionKey, Vec<Encoded>>>,
    costs: Mutex<HashMap<SessionKey, KeyCost>>,
}

impl SessionPool {
    fn new() -> SessionPool {
        SessionPool { idle: Mutex::new(HashMap::new()), costs: Mutex::new(HashMap::new()) }
    }

    /// Locks a cache map, recovering the guard if a previous holder
    /// panicked (the data is a valid cache state either way).
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn pooled(&self) -> usize {
        Self::lock(&self.idle).values().map(Vec::len).sum()
    }

    /// Number of keys the cost model currently tracks.
    fn cost_entries(&self) -> usize {
        Self::lock(&self.costs).len()
    }

    /// Drops idle sessions *and their cost-model entries* for every key
    /// `stale` selects. Evicting the cost entries together with the
    /// sessions is what keeps `costs` bounded in a long-lived process:
    /// a retired key's node set can never be requested again (the nodes
    /// changed behaviour or identity), so its EWMA would otherwise sit
    /// in the map forever.
    fn retire<F: Fn(&SessionKey) -> bool>(&self, stale: F) {
        Self::lock(&self.idle).retain(|k, _| !stale(k));
        Self::lock(&self.costs).retain(|k, _| !stale(k));
    }

    /// Pops an idle session for `key` if the cost model predicts a warm
    /// start wins; when it predicts a loss, any idle sessions for the key
    /// are dropped (their learnt databases are dead weight) and `None`
    /// directs the caller to a fresh stack.
    fn checkout(&self, key: &SessionKey) -> Option<Encoded> {
        let predicted_win =
            Self::lock(&self.costs).get(key).copied().unwrap_or_default().warm_predicted_to_win();
        let mut idle = Self::lock(&self.idle);
        if predicted_win {
            idle.get_mut(key).and_then(Vec::pop)
        } else {
            idle.remove(key);
            None
        }
    }

    /// Records the observed cost of one invariant's sweep on `key`.
    fn record(&self, key: &SessionKey, warmed: bool, delta: &SolverStats) {
        Self::lock(&self.costs).entry(key.clone()).or_default().record(warmed, session_cost(delta));
    }

    /// Returns a session to the pool — unless the cost model now predicts
    /// warmed sessions lose on this key, in which case it is retired
    /// (dropped). Sessions beyond the per-key cap are dropped too.
    fn checkin(&self, key: SessionKey, enc: Encoded) {
        if !Self::lock(&self.costs).get(&key).copied().unwrap_or_default().warm_predicted_to_win() {
            return;
        }
        let mut idle = Self::lock(&self.idle);
        let slot = idle.entry(key).or_default();
        if slot.len() < MAX_POOLED_SESSIONS {
            slot.push(enc);
        }
    }
}

/// The VMN verifier for one network epoch.
///
/// The verifier *owns* its network (behind an [`Arc`]), so long-lived
/// holders — the `vmn serve` daemon — can apply configuration deltas by
/// swapping a mutated network in with [`Verifier::swap_network`] while
/// keeping every warmed solver session the delta's
/// [`TouchSet`](vmn_analysis::TouchSet) proves untouched.
pub struct Verifier {
    net: Arc<Network>,
    options: VerifyOptions,
    policy: PolicyClasses,
    /// Live solver sessions (scenario-/invariant-free skeletons plus
    /// everything registered on them so far), keyed by (node-set, trace
    /// bound), with the cost model driving retire/pool decisions.
    /// `verify` checks sessions out, solves on them, and returns them;
    /// `verify_all` workers thereby share warmed-up solver state across
    /// invariants instead of rebuilding a stack per representative.
    pool: SessionPool,
    /// The BDD dataplane backing the stateless fast path, built lazily on
    /// the first routed check and shared across invariants and scenarios
    /// (per-middlebox transfer predicates and per-scenario delivery
    /// predicates cache inside it). Locking recovers from poisoning for
    /// the same reason the pool's does.
    bdd: Mutex<Option<Dataplane>>,
    /// The modular-verification context (resolved partition, boundary
    /// edges, validated contracts and the per-scenario synthesis cache).
    /// `None` when [`VerifyOptions::partition`] is [`PartitionMode::Off`].
    modular: Option<crate::modular::ModularContext>,
}

/// Running tallies of one invariant's sweep, folded into the [`Report`].
#[derive(Default)]
struct SweepCost {
    scenarios_checked: usize,
    encoded_nodes: usize,
    steps: usize,
    solver: SolverStats,
    smt_scenarios: usize,
    bdd_scenarios: usize,
    contract_scenarios: usize,
    bdd: BddStats,
}

/// Lowers a BDD dataplane witness to the engine's trace format: one
/// host-send step plus one processing step per middlebox hop. The packet
/// header is constant along the path — stateless slices rewrite nothing —
/// and `HavocTag` retags are scripted to the witness tag (0), so the
/// trace replays on the concrete simulator exactly like an SMT witness.
fn witness_to_trace(w: &vmn_bdd::Witness) -> Trace {
    let mut steps = Vec::with_capacity(w.hops.len() + 1);
    steps.push(TraceStep {
        kind: StepKind::HostSend,
        actor: Some(w.sender),
        packet: Some(w.header),
        delivered_to: w.path.get(1).copied(),
        target: None,
        fired_rule: None,
        choice: 0,
        fresh_port: 0,
        fresh_tag: 0,
        oracle_values: HashMap::new(),
    });
    for (i, hop) in w.hops.iter().enumerate() {
        // Hop `i` sits at step `i + 1` and consumes the packet emitted at
        // step `i` (the send, or the previous hop's forward).
        steps.push(TraceStep {
            kind: StepKind::MboxProcess,
            actor: Some(hop.mbox),
            packet: Some(w.header),
            delivered_to: w.path.get(i + 2).copied(),
            target: Some(i),
            fired_rule: Some(hop.rule),
            choice: 0,
            fresh_port: 0,
            fresh_tag: 0,
            oracle_values: hop.oracles.clone(),
        });
    }
    Trace { steps }
}

impl Verifier {
    pub fn new(net: &Network, options: VerifyOptions) -> Result<Verifier, VerifyError> {
        Self::from_arc(Arc::new(net.clone()), options)
    }

    /// Builds a verifier that shares an already-owned network (the
    /// daemon materialises each epoch once and hands the same `Arc` to
    /// the verifier and its own bookkeeping).
    pub fn from_arc(net: Arc<Network>, options: VerifyOptions) -> Result<Verifier, VerifyError> {
        net.validate().map_err(VerifyError::InvalidNetwork)?;
        let policy = match &options.policy_hint {
            Some(groups) => PolicyClasses::from_groups(groups.clone()),
            None => PolicyClasses::compute(&net),
        };
        let modular = Self::build_modular(&net, &options)?;
        Ok(Verifier {
            net,
            options,
            policy,
            pool: SessionPool::new(),
            bdd: Mutex::new(None),
            modular,
        })
    }

    /// Resolves [`VerifyOptions::partition`] against a network:
    /// validates the partition, and for explicit contracts checks
    /// soundness against the synthesized crossings and composition
    /// across every boundary edge. The encoder is fail-stop (failed
    /// nodes neither send nor process), so crossings under any failure
    /// scenario are a subset of the no-failure crossings and one check
    /// here covers every scenario.
    fn build_modular(
        net: &Network,
        options: &VerifyOptions,
    ) -> Result<Option<crate::modular::ModularContext>, VerifyError> {
        match &options.partition {
            PartitionMode::Off => Ok(None),
            PartitionMode::Auto => Ok(Some(crate::modular::ModularContext::auto(&net.topo))),
            PartitionMode::Explicit { partition, contracts } => {
                let mut ctx = crate::modular::ModularContext::resolve(&net.topo, partition.clone())
                    .map_err(|e| VerifyError::InvalidNetwork(e.to_string()))?;
                ctx.install_contracts(net, contracts.clone())?;
                Ok(Some(ctx))
            }
        }
    }

    /// The modular context, when a partition is installed
    /// (diagnostics, the CLI's summary lines and the daemon's
    /// module-aware re-checks).
    pub fn modular_context(&self) -> Option<&crate::modular::ModularContext> {
        self.modular.as_ref()
    }

    /// The network epoch this verifier currently answers for.
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Swaps in a new network epoch, retiring exactly the pooled state
    /// the delta's footprint invalidates:
    ///
    /// * [`TouchSet::Nothing`] — invariants/scenarios changed but no
    ///   node's behaviour did: every session, cost entry and the BDD
    ///   dataplane survive (both register new scenarios and invariants
    ///   lazily).
    /// * [`TouchSet::Nodes`] — a model swap: sessions (and their cost
    ///   entries) whose node set contains a touched node are retired;
    ///   the rest keep their skeletons, which encode only their own
    ///   nodes' models plus delivery behaviour — and the topology and
    ///   tables are unchanged by contract for this variant. The BDD
    ///   dataplane caches per-middlebox transfer predicates, so it is
    ///   dropped and rebuilt lazily.
    /// * [`TouchSet::Everything`] — structural change: node identity,
    ///   header classes and delivery may all have moved; every pooled
    ///   session, cost entry and the dataplane are retired.
    ///
    /// Policy classes are recomputed (unless pinned by
    /// [`VerifyOptions::policy_hint`]) for any non-`Nothing` touch.
    pub fn swap_network(
        &mut self,
        net: Arc<Network>,
        touched: &TouchSet,
    ) -> Result<(), VerifyError> {
        net.validate().map_err(VerifyError::InvalidNetwork)?;
        // Rebuild the modular context against the new epoch before any
        // state is mutated (explicit contracts are re-validated — a delta
        // can widen the crossings past a declared guarantee). A `Nothing`
        // touch leaves topology, tables and models alone, so the existing
        // context and its memoized syntheses stay valid.
        let modular = if touched.is_nothing() {
            None
        } else {
            Some(Self::build_modular(&net, &self.options)?)
        };
        match touched {
            TouchSet::Nothing => {}
            TouchSet::Everything => self.pool.retire(|_| true),
            TouchSet::Nodes(names) => {
                // Names resolve identically on the old and new topology
                // for this variant (the contract is "models changed,
                // structure did not"); unknown names simply match no key.
                let ids: HashSet<NodeId> =
                    names.iter().filter_map(|n| net.topo.by_name(n).ok()).collect();
                self.pool.retire(|(nodes, _)| nodes.iter().any(|n| ids.contains(n)));
            }
        }
        if !touched.is_nothing() {
            self.policy = match &self.options.policy_hint {
                Some(groups) => PolicyClasses::from_groups(groups.clone()),
                None => PolicyClasses::compute(&net),
            };
            *self.bdd.get_mut().unwrap_or_else(PoisonError::into_inner) = None;
            self.bdd.clear_poison();
            self.modular = modular.expect("built above for non-Nothing touches");
        }
        self.net = net;
        Ok(())
    }

    pub fn policy(&self) -> &PolicyClasses {
        &self.policy
    }

    /// Number of idle sessions currently pooled (diagnostics/tests).
    pub fn pooled_sessions(&self) -> usize {
        self.pool.pooled()
    }

    /// Number of (node-set, bound) keys the session pool's cost model
    /// tracks. Bounded in a long-lived process: [`Verifier::swap_network`]
    /// evicts entries together with the sessions they model.
    pub fn cost_model_entries(&self) -> usize {
        self.pool.cost_entries()
    }

    /// Checks a session for `(nodes, k)` out of the pool, building the
    /// skeleton on a miss, when the cost model vetoes reuse, or always
    /// when session reuse is off. The flag reports whether the session
    /// came back warmed (pool hit).
    fn checkout_session(&self, nodes: &[NodeId], k: usize) -> Result<(Encoded, bool), VerifyError> {
        if self.options.reuse_sessions {
            if let Some(mut enc) = self.pool.checkout(&(nodes.to_vec(), k)) {
                // A session that has absorbed a heavyweight search since
                // its last scrub carries an activity/phase profile tuned
                // to a foreign query; scrub it (keeping the clause
                // database and caches) so re-entry starts a clean search
                // over warm lemmas. The watermark makes this a per-wear
                // decision: many light sweeps never re-trigger it.
                if enc.ctx.conflicts_since_search_reset() >= SCRUB_SEARCH_CONFLICTS {
                    enc.ctx.reset_search_state();
                }
                // The pool only holds sessions this verifier built, so a
                // pooled session's proof state always matches the options.
                debug_assert_eq!(enc.ctx.proofs_enabled(), self.options.emit_proofs);
                return Ok((enc, true));
            }
        }
        let mut enc = encoder::encode_skeleton(&self.net, nodes, k)?;
        if self.options.emit_proofs {
            // Legal here (and only here): clauses reach the SAT core
            // during lazy lowering at check time, so a freshly encoded
            // skeleton still has a pristine solver.
            enc.ctx.enable_proofs();
        }
        Ok((enc, false))
    }

    /// Feeds the cost model and returns the session to the pool for the
    /// next invariant with the same key (unless the model retires it).
    fn checkin_session(&self, key: SessionKey, enc: Encoded, warmed: bool, delta: &SolverStats) {
        if !self.options.reuse_sessions {
            return;
        }
        self.pool.record(&key, warmed, delta);
        self.pool.checkin(key, enc);
    }

    /// Whether this (scenario, slice) goes to the BDD fast path. `Auto`
    /// routes stateless slices there unless certificates are requested
    /// (the BDD backend emits none); forced `Bdd` turns both obstacles
    /// into hard errors instead of silently falling back.
    fn route_to_bdd(
        &self,
        scenario: &FailureScenario,
        nodes: &[NodeId],
    ) -> Result<bool, VerifyError> {
        match self.options.backend {
            Backend::Smt => Ok(false),
            Backend::Auto => {
                Ok(!self.options.emit_proofs && stateless_slice(&self.net, scenario, nodes))
            }
            Backend::Bdd => {
                if self.options.emit_proofs {
                    return Err(VerifyError::Bdd(
                        "certificates were requested but the bdd backend emits no proofs; \
                         disable proof emission or use the smt backend"
                            .into(),
                    ));
                }
                if let Some(m) = first_stateful_middlebox(&self.net, scenario, nodes) {
                    return Err(VerifyError::Bdd(format!(
                        "slice middlebox '{}' holds mutable state; the bdd backend only \
                         answers stateless slices",
                        self.net.topo.node(m).name
                    )));
                }
                Ok(true)
            }
        }
    }

    /// Answers one scenario on the BDD dataplane: maps the invariant to a
    /// reachability query, runs the fixed-point check on the (lazily
    /// built, shared) dataplane, accumulates the manager-stats delta into
    /// `stats`, and lowers a violation witness to a replayable [`Trace`].
    fn check_bdd(
        &self,
        inv: &Invariant,
        scenario: &FailureScenario,
        nodes: &[NodeId],
        k: usize,
        stats: &mut BddStats,
    ) -> Result<Option<Trace>, VerifyError> {
        // On a stateless slice no middlebox distinguishes flows or
        // origins, so flow isolation collapses to node isolation and data
        // isolation to reachability from the origin's address (the
        // dataplane pins packet origin == source address, matching the
        // SMT encoder's send axioms).
        let query = match inv {
            Invariant::NodeIsolation { src, dst } | Invariant::FlowIsolation { src, dst } => {
                Query::SourceReaches { saddr: self.net.host_address(*src), dst: *dst }
            }
            Invariant::DataIsolation { origin, dst } => {
                Query::SourceReaches { saddr: self.net.host_address(*origin), dst: *dst }
            }
            Invariant::Traversal { dst, through, from } => {
                Query::Bypass { dst: *dst, through: through.clone(), from: *from }
            }
        };
        // Unlike the pool's maps, a dataplane caught mid-mutation by a
        // panicking thread is not obviously a valid cache state, so
        // poison recovery here *discards* the instance instead of
        // trusting it: the next check rebuilds lazily, which is exactly
        // the already-supported cold path.
        let mut guard = match self.bdd.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                *g = None;
                self.bdd.clear_poison();
                g
            }
        };
        if guard.is_none() {
            *guard = Some(Dataplane::new(&self.net.topo, &self.net.tables));
        }
        let dp = guard.as_mut().expect("installed above");
        let before = dp.stats();
        // The SMT trace spends one step on the host send, so a bound of
        // `k` steps admits at most `k - 1` middlebox processings.
        let outcome = dp
            .check(
                &self.net.topo,
                &self.net.tables,
                &self.net.models,
                scenario,
                nodes,
                &query,
                k.saturating_sub(1),
            )
            .map_err(|e| match e {
                DataplaneError::Net(n) => VerifyError::Net(n),
                other => VerifyError::Bdd(other.to_string()),
            })?;
        *stats = *stats + dp.stats().delta_since(&before);
        match outcome {
            Outcome::Holds => Ok(None),
            Outcome::Violated(w) => Ok(Some(witness_to_trace(&w))),
        }
    }

    /// The per-scenario verification plan — the slice (or whole terminal
    /// set) and trace bound [`Verifier::verify`] would use for this
    /// (invariant, scenario) pair. Public because the `vmn_serve` daemon
    /// fingerprints cached verdicts over exactly these inputs
    /// (`vmn::slice::verdict_fingerprint`), and the fingerprint is only
    /// sound if it is computed against the plan the engine actually runs.
    pub fn plan_for(
        &self,
        inv: &Invariant,
        scenario: &FailureScenario,
    ) -> Result<(Vec<NodeId>, usize), VerifyError> {
        self.plan(inv, scenario)
    }

    /// The per-scenario verification plan: slice (or whole terminal set)
    /// and trace bound.
    fn plan(
        &self,
        inv: &Invariant,
        scenario: &FailureScenario,
    ) -> Result<(Vec<NodeId>, usize), VerifyError> {
        let mut nodes: Vec<NodeId> = if self.options.use_slices {
            compute_slice(&self.net, scenario, inv, &self.policy)?
        } else {
            self.net.topo.terminals().collect()
        };
        nodes.sort();
        nodes.dedup();
        let k = self.options.steps_override.unwrap_or_else(|| {
            bounds::trace_bound(&self.net, scenario, inv, &nodes, self.options.slack)
        });
        Ok((nodes, k))
    }

    /// Verifies a single invariant across all configured failure
    /// scenarios, stopping at the first violation.
    ///
    /// By default (`options.incremental`) the sweep is *incremental* and
    /// *clustered*: the per-scenario slices are grouped by Jaccard
    /// similarity (see `options.cluster_threshold`), each cluster gets
    /// one encoder holding the scenario-independent formula over the
    /// union of its members' slices at the largest required bound, and
    /// each scenario is one assumption-based call on its cluster's
    /// persistent solver — clauses learnt refuting scenario `n` carry
    /// over to every later scenario of the same cluster. Scenarios are
    /// still checked in their configured order (sessions interleave), so
    /// the first violating scenario matches the per-scenario baseline.
    /// (A union of sufficient slices is itself sufficient, and a larger
    /// trace bound only widens the violation search, so verdicts match
    /// the baseline for *any* clustering; the differential tests and the
    /// fuzz suite replay every extracted witness on the concrete
    /// simulator as an additional safeguard.)
    ///
    /// With `options.reuse_sessions` (the default) the cluster sessions
    /// additionally persist *across invariants*: each skeleton is checked
    /// out of a pool keyed by (node-set, trace bound), this invariant's
    /// violation formula is registered behind an activation literal, and
    /// the session — with every clause learnt so far — is returned for
    /// the next invariant with the same key, governed by the pool's
    /// per-key cost model.
    pub fn verify(&self, inv: &Invariant) -> Result<Report, VerifyError> {
        self.verify_under(inv, self.net.all_scenarios())
    }

    /// [`Verifier::verify`] restricted to an explicit scenario list (in
    /// the given order — the first violating scenario is the first in
    /// `scenarios`, as in the full sweep). The daemon uses this to
    /// re-check exactly the (invariant, scenario) pairs a delta touched;
    /// an empty list trivially holds. Scenarios need not be registered on
    /// the network.
    pub fn verify_under(
        &self,
        inv: &Invariant,
        scenarios: Vec<FailureScenario>,
    ) -> Result<Report, VerifyError> {
        let start = Instant::now();
        let emit_proofs = self.options.emit_proofs;
        let report = |verdict, cost: SweepCost, certificate| Report {
            invariant: inv.clone(),
            verdict,
            elapsed: start.elapsed(),
            scenarios_checked: cost.scenarios_checked,
            encoded_nodes: cost.encoded_nodes,
            steps: cost.steps,
            inherited: false,
            solver: cost.solver,
            certificate,
            smt_scenarios: cost.smt_scenarios,
            bdd_scenarios: cost.bdd_scenarios,
            contract_scenarios: cost.contract_scenarios,
            bdd: cost.bdd,
        };
        // One proof session per solver session the sweep touches; the
        // bundle label names the invariant so `vmn-cli check` output is
        // attributable.
        let mut cert =
            emit_proofs.then(|| CertificateBundle { label: inv.to_string(), sessions: Vec::new() });

        if scenarios.is_empty() {
            return Ok(report(Verdict::Holds, SweepCost::default(), cert));
        }

        if !self.options.incremental {
            // From-scratch baseline: fresh slice, encoder and solver per
            // scenario (what the `scenario_sweep` bench compares against).
            let mut cost = SweepCost::default();
            for scenario in scenarios {
                cost.scenarios_checked += 1;
                let (nodes, k) = self.plan(inv, &scenario)?;
                cost.encoded_nodes = cost.encoded_nodes.max(nodes.len());
                cost.steps = cost.steps.max(k);
                // Backend routing is resolved before the contract fast
                // path so a forced-BDD misconfiguration errors exactly
                // like the monolithic engine would.
                let routed = self.route_to_bdd(&scenario, &nodes)?;
                if let Some(m) = &self.modular {
                    if m.contract_holds(&self.net, inv, &scenario) {
                        cost.contract_scenarios += 1;
                        continue;
                    }
                }
                if routed {
                    cost.bdd_scenarios += 1;
                    if let Some(trace) = self.check_bdd(inv, &scenario, &nodes, k, &mut cost.bdd)? {
                        return Ok(report(Verdict::Violated { trace, scenario }, cost, cert));
                    }
                    continue;
                }
                cost.smt_scenarios += 1;
                let mut enc = encoder::encode(&self.net, &scenario, &nodes, inv, k)?;
                if emit_proofs {
                    enc.ctx.enable_proofs();
                }
                let sat = enc.ctx.check();
                cost.solver = cost.solver + enc.ctx.stats();
                if let (Some(bundle), Some(session)) = (&mut cert, enc.ctx.proof_session(0)) {
                    bundle.sessions.push(session);
                }
                if sat == SatResult::Sat {
                    let trace = Trace::extract(&mut enc);
                    return Ok(report(Verdict::Violated { trace, scenario }, cost, cert));
                }
            }
            return Ok(report(Verdict::Holds, cost, cert));
        }

        // Plan the scenarios up front, cluster their slices by overlap,
        // and solve the sweep on one persistent solver session *per
        // cluster*. A plan error stops planning but must not mask a
        // violation in an *earlier* scenario (the baseline plans lazily
        // and would have reported it first), so the planned prefix is
        // still checked before the error is surfaced.
        let mut slices: Vec<Vec<NodeId>> = Vec::new();
        let mut bounds_per_scenario: Vec<usize> = Vec::new();
        let mut routes: Vec<bool> = Vec::new();
        let mut contracts: Vec<bool> = Vec::new();
        let mut plan_error = None;
        for scenario in &scenarios {
            let planned = self.plan(inv, scenario).and_then(|(nodes, ks)| {
                // Routing resolves first so forced-BDD misconfigurations
                // error exactly like the monolithic engine; the contract
                // fast path then claims whatever scenarios it can prove.
                let routed = self.route_to_bdd(scenario, &nodes)?;
                let contract = self
                    .modular
                    .as_ref()
                    .is_some_and(|m| m.contract_holds(&self.net, inv, scenario));
                Ok((nodes, ks, routed, contract))
            });
            match planned {
                Ok((nodes, ks, routed, contract)) => {
                    slices.push(nodes);
                    bounds_per_scenario.push(ks);
                    routes.push(routed);
                    contracts.push(contract);
                }
                Err(e) => {
                    plan_error = Some(e);
                    break;
                }
            }
        }
        let planned = slices.len();
        if planned > 0 {
            // NaN survives f64::clamp; fall back to the documented default
            // rather than silently disabling every merge.
            let threshold = if self.options.cluster_threshold.is_nan() {
                DEFAULT_CLUSTER_THRESHOLD
            } else {
                self.options.cluster_threshold.clamp(0.0, 1.0)
            };
            // Only SMT-routed scenarios need solver sessions; cluster
            // their slices alone so a BDD-heavy sweep does not inflate
            // (or merge) the solver clusters, then map the cluster
            // members back to global scenario indices.
            let smt_planned: Vec<usize> =
                (0..planned).filter(|&i| !routes[i] && !contracts[i]).collect();
            let smt_slices: Vec<Vec<NodeId>> =
                smt_planned.iter().map(|&i| slices[i].clone()).collect();
            let clusters: Vec<Vec<usize>> = cluster_slices(&smt_slices, threshold)
                .into_iter()
                .map(|members| members.into_iter().map(|j| smt_planned[j]).collect())
                .collect();
            // Per cluster: the union node set, the max bound, and —
            // lazily, when its first scenario comes up — the session.
            struct ClusterState {
                nodes: Vec<NodeId>,
                k: usize,
                /// Session, pool-hit flag, stats snapshot at checkout, and
                /// the proof-check watermark at checkout: a pooled session's
                /// log already holds other invariants' check records, so
                /// this invariant's certificate slices from the watermark.
                session: Option<(Encoded, bool, SolverStats, usize)>,
            }
            let mut states: Vec<ClusterState> = clusters
                .iter()
                .map(|members| {
                    let mut nodes: Vec<NodeId> =
                        members.iter().flat_map(|&i| slices[i].iter().copied()).collect();
                    nodes.sort();
                    nodes.dedup();
                    let k = members
                        .iter()
                        .map(|&i| bounds_per_scenario[i])
                        .max()
                        .expect("clusters are non-empty");
                    ClusterState { nodes, k, session: None }
                })
                .collect();
            // BDD-routed scenarios have no cluster; `usize::MAX` keeps an
            // accidental lookup loud instead of aliasing cluster 0.
            let mut cluster_of: Vec<usize> = vec![usize::MAX; planned];
            for (c, members) in clusters.iter().enumerate() {
                for &i in members {
                    cluster_of[i] = c;
                }
            }
            let mut cost = SweepCost::default();
            let mut outcome: Result<Option<(Trace, FailureScenario)>, VerifyError> = Ok(None);
            let mut errored_cluster = None;
            for (i, scenario) in scenarios.into_iter().take(planned).enumerate() {
                if contracts[i] {
                    // Contract-answered: the synthesized boundary windows
                    // prove the scenario holds; nothing is encoded. Plans
                    // still count toward the size/bound maxima so reports
                    // stay comparable across engine configurations.
                    cost.scenarios_checked += 1;
                    cost.contract_scenarios += 1;
                    cost.encoded_nodes = cost.encoded_nodes.max(slices[i].len());
                    cost.steps = cost.steps.max(bounds_per_scenario[i]);
                    let _ = scenario;
                    continue;
                }
                if routes[i] {
                    cost.scenarios_checked += 1;
                    cost.bdd_scenarios += 1;
                    // Fast-path plans still count toward the report's
                    // size/bound maxima so Auto and forced-SMT reports
                    // stay comparable.
                    cost.encoded_nodes = cost.encoded_nodes.max(slices[i].len());
                    cost.steps = cost.steps.max(bounds_per_scenario[i]);
                    match self.check_bdd(
                        inv,
                        &scenario,
                        &slices[i],
                        bounds_per_scenario[i],
                        &mut cost.bdd,
                    ) {
                        Ok(None) => {}
                        Ok(Some(trace)) => {
                            outcome = Ok(Some((trace, scenario)));
                            break;
                        }
                        Err(e) => {
                            outcome = Err(e);
                            break;
                        }
                    }
                    continue;
                }
                let state = &mut states[cluster_of[i]];
                if state.session.is_none() {
                    // Sessions may have been warmed up by other invariants
                    // with the same (node-set, bound) key; the stats delta
                    // below still attributes only this invariant's checks
                    // to its report.
                    match self.checkout_session(&state.nodes, state.k) {
                        Ok((enc, warmed)) => {
                            let before = enc.ctx.stats();
                            let checks_from = enc.ctx.proof_checks();
                            state.session = Some((enc, warmed, before, checks_from));
                        }
                        Err(e) => {
                            outcome = Err(e);
                            break;
                        }
                    }
                }
                let (enc, ..) = state.session.as_mut().expect("installed above");
                cost.scenarios_checked += 1;
                cost.smt_scenarios += 1;
                match enc.check_invariant_scenario(&self.net, inv, &scenario) {
                    Ok(SatResult::Sat) => {
                        outcome = Ok(Some((Trace::extract(enc), scenario)));
                        break;
                    }
                    Ok(SatResult::Unsat) => {}
                    Err(e) => {
                        outcome = Err(e.into());
                        errored_cluster = Some(cluster_of[i]);
                        break;
                    }
                }
            }

            // Return every touched session to the pool (with its observed
            // cost), summing the per-cluster deltas into this invariant's
            // attribution, and report sizes/bounds over the clusters that
            // were *actually encoded* (an early violation may leave later
            // clusters unbuilt). A session whose check errored may hold a
            // half-registered scenario encoding; drop it instead, so later
            // invariants with the same key start from a clean skeleton.
            cost.steps = cost.steps.max(1);
            for (c, state) in states.into_iter().enumerate() {
                let Some((enc, warmed, before, checks_from)) = state.session else { continue };
                cost.encoded_nodes = cost.encoded_nodes.max(state.nodes.len());
                cost.steps = cost.steps.max(state.k);
                let delta = enc.ctx.stats().delta_since(&before);
                cost.solver = cost.solver + delta;
                if let (Some(bundle), Some(session)) =
                    (&mut cert, enc.ctx.proof_session(checks_from))
                {
                    bundle.sessions.push(session);
                }
                if errored_cluster != Some(c) {
                    self.checkin_session((state.nodes, state.k), enc, warmed, &delta);
                }
            }

            match outcome {
                Err(e) => return Err(e),
                Ok(Some((trace, scenario))) => {
                    return Ok(report(Verdict::Violated { trace, scenario }, cost, cert));
                }
                Ok(None) if plan_error.is_none() => {
                    return Ok(report(Verdict::Holds, cost, cert));
                }
                Ok(None) => {}
            }
        }
        Err(plan_error.expect("no-error case returned above; scenarios is never empty"))
    }

    /// Verifies a set of invariants, exploiting symmetry (one solver run
    /// per symmetry group, §4.2) and thread-level parallelism.
    ///
    /// Returns one report per input invariant, in input order.
    pub fn verify_all(
        &self,
        invariants: &[Invariant],
        threads: usize,
    ) -> Result<Vec<Report>, VerifyError> {
        let groups = group_by_symmetry(&self.net, &self.policy, invariants);
        let reps: Vec<usize> = groups.iter().map(|g| g[0]).collect();

        // Verify representatives (possibly in parallel).
        let rep_reports: Vec<Result<Report, VerifyError>> = if threads <= 1 || reps.len() <= 1 {
            reps.iter().map(|&i| self.verify(&invariants[i])).collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let results: Vec<std::sync::Mutex<Option<Result<Report, VerifyError>>>> =
                reps.iter().map(|_| std::sync::Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads.min(reps.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if i >= reps.len() {
                            break;
                        }
                        let r = self.verify(&invariants[reps[i]]);
                        // A sibling worker that panicked while writing its
                        // slot poisons only that slot; recover rather than
                        // cascading the panic into every other result (the
                        // Option is valid either way).
                        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    });
                }
            });
            results
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("worker filled result")
                })
                .collect()
        };

        // Distribute verdicts to symmetric members.
        let mut out: Vec<Option<Report>> = (0..invariants.len()).map(|_| None).collect();
        for (g_idx, group) in groups.iter().enumerate() {
            let rep_report = match &rep_reports[g_idx] {
                Ok(r) => r.clone(),
                // Propagate the representative's real error (encode errors
                // included — `EncodeError` is cloneable).
                Err(e) => return Err(e.clone()),
            };
            for (pos, &inv_idx) in group.iter().enumerate() {
                let mut r = rep_report.clone();
                r.invariant = invariants[inv_idx].clone();
                r.inherited = pos > 0;
                if r.inherited {
                    // Inherited verdicts cost no solver run of their own:
                    // zero the cost fields so summing over a run's reports
                    // counts each wall-clock second (and each conflict)
                    // exactly once.
                    r.elapsed = Duration::ZERO;
                    r.solver = SolverStats::default();
                    r.bdd = BddStats::default();
                    // The certificate proves the *representative's* run;
                    // an inherited verdict has no solver run of its own to
                    // certify (symmetry is the trusted step here).
                    r.certificate = None;
                }
                out[inv_idx] = Some(r);
            }
        }
        Ok(out.into_iter().map(|r| r.expect("all invariants covered")).collect())
    }

    /// Convenience: is `dst` reachable from `src`? (The dual of simple
    /// isolation: reachability holds iff the isolation invariant is
    /// violated.)
    pub fn can_reach(&self, src: NodeId, dst: NodeId) -> Result<bool, VerifyError> {
        let inv = Invariant::NodeIsolation { src, dst };
        Ok(!self.verify(&inv)?.verdict.holds())
    }
}

impl Verifier {
    /// Checks a *pipeline invariant* (§2.3): packets from `src` to `dst`
    /// must traverse the given middlebox-type sequence on the static
    /// datapath. This is the invariant family the paper delegates to
    /// static-datapath tools; the checker lives in `vmn-net` and is
    /// surfaced here so both §2.1 invariant classes share one entry point.
    ///
    /// Checked under every configured failure scenario; returns the first
    /// violation found.
    pub fn check_pipeline(
        &self,
        spec: &vmn_net::PipelineSpec,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Option<(vmn_net::PipelineViolation, FailureScenario)>, VerifyError> {
        for scenario in self.net.all_scenarios() {
            let tf = vmn_net::TransferFunction::new(&self.net.topo, &self.net.tables, &scenario);
            for &addr in &self.net.topo.node(dst).addresses {
                if let Err(v) = spec.check(&tf, src, addr).map_err(VerifyError::Net)? {
                    return Ok(Some((v, scenario)));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{PipelineSpec, Prefix, RoutingConfig, Rule, Topology};

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn pipelined(with_backup: bool) -> (Network, NodeId, NodeId) {
        let mut topo = Topology::new();
        let src = topo.add_host("src", "8.8.8.8".parse().unwrap());
        let dst = topo.add_host("dst", "10.0.0.5".parse().unwrap());
        let sw = topo.add_switch("sw");
        let fw1 = topo.add_middlebox("fw1", "stateful-firewall", vec![]);
        let fw2 = topo.add_middlebox("fw2", "stateful-firewall", vec![]);
        for n in [src, dst, fw1, fw2] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &vmn_net::FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, fw1).with_priority(20));
        if with_backup {
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, fw2).with_priority(10));
        }
        let mut net = Network::new(topo, tables);
        let acl = vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))];
        net.set_model(fw1, models::learning_firewall("stateful-firewall", acl.clone()));
        net.set_model(fw2, models::learning_firewall("stateful-firewall", acl));
        net.add_scenario(vmn_net::FailureScenario::nodes([fw1]));
        (net, src, dst)
    }

    #[test]
    fn mis_annotated_model_is_rejected_at_construction() {
        // Declared FlowParallel but writes a shared (src-keyed) state
        // set on the forwarding path: slicing would trust the claim and
        // build an unsound slice, so Verifier::new must refuse the
        // network with a clean error.
        use vmn_mbox::{Action, Guard, KeyExpr, MboxModel, Parallelism};
        let mut topo = Topology::new();
        let src = topo.add_host("src", "8.8.8.8".parse().unwrap());
        let dst = topo.add_host("dst", "10.0.0.5".parse().unwrap());
        let sw = topo.add_switch("sw");
        let mb = topo.add_middlebox("mb", "tracker", vec![]);
        for n in [src, dst, mb] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &vmn_net::FailureScenario::none());
        tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), src, mb).with_priority(20));
        let mut net = Network::new(topo, tables);
        let mutant = MboxModel::new("tracker")
            .parallelism(Parallelism::FlowParallel)
            .state("seen", KeyExpr::SrcAddr)
            .rule(
                Guard::StateContains { state: "seen".into(), key: KeyExpr::SrcAddr },
                vec![Action::Forward],
            )
            .rule(Guard::True, vec![Action::Insert("seen".into()), Action::Forward]);
        net.set_model(mb, mutant);
        let err = Verifier::new(&net, VerifyOptions::default())
            .map(|_| ())
            .expect_err("the overclaimed annotation must be rejected");
        match err {
            VerifyError::InvalidNetwork(msg) => {
                assert!(msg.contains("parallelism-overclaim"), "unexpected message: {msg}");
                assert!(msg.contains("\"mb\""), "names the offending middlebox: {msg}");
            }
            other => panic!("expected InvalidNetwork, got {other}"),
        }

        // Fixing the annotation makes the same network verifiable.
        let honest = MboxModel::new("tracker")
            .parallelism(Parallelism::General)
            .state("seen", KeyExpr::SrcAddr)
            .rule(
                Guard::StateContains { state: "seen".into(), key: KeyExpr::SrcAddr },
                vec![Action::Forward],
            )
            .rule(Guard::True, vec![Action::Insert("seen".into()), Action::Forward]);
        net.set_model(mb, honest);
        assert!(Verifier::new(&net, VerifyOptions::default()).is_ok());
    }

    #[test]
    fn pipeline_holds_with_backup_steering() {
        let (net, src, dst) = pipelined(true);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let spec = PipelineSpec::new(["stateful-firewall"]);
        assert!(v.check_pipeline(&spec, src, dst).unwrap().is_none());
    }

    #[test]
    fn pipeline_violated_without_backup_under_failure() {
        let (net, src, dst) = pipelined(false);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let spec = PipelineSpec::new(["stateful-firewall"]);
        let (violation, scenario) =
            v.check_pipeline(&spec, src, dst).unwrap().expect("bypass found");
        assert_eq!(violation.missing, "stateful-firewall");
        assert_eq!(scenario.fault_count(), 1, "only the failure scenario bypasses");
    }

    #[test]
    fn steps_override_is_respected() {
        let (net, src, dst) = pipelined(true);
        let opts = VerifyOptions { steps_override: Some(3), ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let r = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(r.steps, 3);
    }

    #[test]
    fn sessions_are_pooled_and_reused_across_invariants() {
        let (net, src, dst) = pipelined(true);
        // Pin the bound so both invariant kinds share a session key.
        let opts = VerifyOptions { steps_override: Some(4), ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        assert_eq!(v.pooled_sessions(), 0);
        let r1 = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "the session returns to the pool");
        let r2 = v.verify(&Invariant::DataIsolation { origin: src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "the second invariant re-entered the same session");
        assert_eq!(r1.verdict.holds(), r2.verdict.holds());
        // Per-invariant attribution: each report carries only its own
        // solver work, not the session's cumulative counters.
        assert!(r1.solver.decisions + r1.solver.propagations > 0);
        assert!(r2.solver.decisions + r2.solver.propagations > 0);

        // With reuse disabled, nothing is pooled.
        let opts =
            VerifyOptions { steps_override: Some(4), reuse_sessions: false, ..Default::default() };
        let v2 = Verifier::new(&net, opts).unwrap();
        v2.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v2.pooled_sessions(), 0);
    }

    #[test]
    fn session_reuse_matches_fresh_stacks() {
        let (net, src, dst) = pipelined(false);
        let invs = [
            Invariant::NodeIsolation { src, dst },
            Invariant::NodeIsolation { src: dst, dst: src },
            Invariant::DataIsolation { origin: src, dst },
        ];
        let pooled =
            Verifier::new(&net, VerifyOptions { steps_override: Some(4), ..Default::default() })
                .unwrap();
        let fresh = Verifier::new(
            &net,
            VerifyOptions { steps_override: Some(4), reuse_sessions: false, ..Default::default() },
        )
        .unwrap();
        for inv in &invs {
            let got = pooled.verify(inv).unwrap();
            let want = fresh.verify(inv).unwrap();
            assert_eq!(got.verdict.holds(), want.verdict.holds(), "{inv}");
            assert_eq!(got.scenarios_checked, want.scenarios_checked, "{inv}");
        }
    }

    #[test]
    fn inherited_reports_carry_no_elapsed_or_solver_cost() {
        let (net, src, dst) = pipelined(true);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        // Two flow-isolation invariants that are symmetric by construction
        // would need a symmetric pair; instead verify the same invariant
        // twice — symmetry groups duplicates, so the second is inherited.
        let inv = Invariant::NodeIsolation { src, dst };
        let reports = v.verify_all(&[inv.clone(), inv], 1).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(!reports[0].inherited);
        assert!(reports[1].inherited);
        assert!(reports[0].elapsed > Duration::ZERO);
        assert_eq!(reports[1].elapsed, Duration::ZERO, "inherited elapsed must not double-count");
        assert_eq!(reports[1].solver.decisions, 0);
        assert_eq!(reports[1].solver.propagations, 0);
    }

    #[test]
    fn key_cost_model_predictions() {
        let mut c = KeyCost::default();
        assert!(c.warm_predicted_to_win(), "no evidence: optimistic");
        c.record(false, 1000.0);
        assert!(c.warm_predicted_to_win(), "fresh-only evidence: still optimistic");
        c.record(true, 800.0);
        assert!(c.warm_predicted_to_win(), "warm cheaper than fresh");
        // A run of expensive warmed sweeps flips the prediction…
        for _ in 0..4 {
            c.record(true, 5000.0);
        }
        assert!(!c.warm_predicted_to_win(), "warm EWMA far above fresh");
        // …cheaper warm samples win it back directly (EWMA, not a
        // ratchet)…
        for _ in 0..6 {
            c.record(true, 500.0);
        }
        assert!(c.warm_predicted_to_win(), "cost model must recover from warm evidence");
        // …and — crucially — so do *fresh* samples alone: while the
        // prediction blocks warmed starts, the system can only ever
        // observe fresh sweeps, so the stale warm estimate must decay
        // toward them or the model would ratchet shut forever.
        for _ in 0..4 {
            c.record(true, 50_000.0);
        }
        assert!(!c.warm_predicted_to_win());
        let mut fresh_rounds = 0;
        while !c.warm_predicted_to_win() {
            c.record(false, 1000.0);
            fresh_rounds += 1;
            assert!(fresh_rounds < 100, "fresh-only evidence must eventually re-open the key");
        }
    }

    #[test]
    fn cost_model_retires_sessions_predicted_to_lose() {
        let (net, src, dst) = pipelined(true);
        let opts = VerifyOptions { steps_override: Some(4), ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let inv = Invariant::NodeIsolation { src, dst };
        let r = v.verify(&inv).unwrap();
        assert_eq!(v.pooled_sessions(), 1);
        // Force the model to predict warmed losses for the pooled key.
        {
            let mut costs = SessionPool::lock(&v.pool.costs);
            let key = costs.keys().next().cloned().expect("one key recorded");
            let cost = costs.get_mut(&key).unwrap();
            cost.record(false, 10.0);
            for _ in 0..4 {
                cost.record(true, 1_000_000.0);
            }
            assert!(!cost.warm_predicted_to_win());
        }
        // Checkout now rebuilds fresh (and drains the stale idle session);
        // checkin retires instead of pooling.
        let r2 = v.verify(&inv).unwrap();
        assert_eq!(r.verdict.holds(), r2.verdict.holds());
        assert_eq!(v.pooled_sessions(), 0, "predicted-to-lose sessions must be retired");
    }

    #[test]
    fn pool_lock_poisoning_does_not_wedge_later_verifies() {
        let (net, src, dst) = pipelined(true);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let inv = Invariant::NodeIsolation { src, dst };
        let first = v.verify(&inv).unwrap();
        assert!(v.pooled_sessions() > 0);
        // Poison both pool mutexes: a worker panicking while holding the
        // lock marks it poisoned for every later lock().
        std::thread::scope(|s| {
            let idle = s.spawn(|| {
                let _guard = v.pool.idle.lock().unwrap();
                panic!("worker dies holding the idle lock");
            });
            let costs = s.spawn(|| {
                let _guard = v.pool.costs.lock().unwrap();
                panic!("worker dies holding the costs lock");
            });
            assert!(idle.join().is_err());
            assert!(costs.join().is_err());
        });
        assert!(v.pool.idle.is_poisoned(), "the test must actually poison the lock");
        // Later verifies (and pool diagnostics) recover instead of
        // propagating the poison.
        assert!(v.pooled_sessions() > 0);
        let again = v.verify(&inv).unwrap();
        assert_eq!(first.verdict.holds(), again.verdict.holds());
        let all = v.verify_all(&[inv.clone(), inv], 2).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn cluster_threshold_extremes_agree() {
        // Deny-all firewalls (invariant holds in the no-failure scenario,
        // violated under fw1's failure): every clustering — one union,
        // default, per-scenario — must match the from-scratch baseline on
        // verdict, first violating scenario and scenario count.
        let (mut net, src, dst) = pipelined(false);
        for name in ["fw1", "fw2"] {
            let fw = net.topo.by_name(name).unwrap();
            net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));
        }
        net.add_scenario(vmn_net::FailureScenario::nodes([dst]));
        let inv = Invariant::NodeIsolation { src, dst };
        let base = Verifier::new(&net, VerifyOptions { incremental: false, ..Default::default() })
            .unwrap();
        let want = base.verify(&inv).unwrap();
        for threshold in [0.0, DEFAULT_CLUSTER_THRESHOLD, 1.0] {
            let opts = VerifyOptions { cluster_threshold: threshold, ..Default::default() };
            let v = Verifier::new(&net, opts).unwrap();
            let got = v.verify(&inv).unwrap();
            assert_eq!(got.verdict.holds(), want.verdict.holds(), "threshold {threshold}");
            assert_eq!(got.scenarios_checked, want.scenarios_checked, "threshold {threshold}");
            if let (
                Verdict::Violated { scenario: gs, .. },
                Verdict::Violated { scenario: ws, .. },
            ) = (&got.verdict, &want.verdict)
            {
                assert_eq!(gs, ws, "threshold {threshold}: first violating scenario");
            }
        }
    }

    /// The pipelined topology with the firewalls swapped to *stateless*
    /// ACL models (same "stateful-firewall" type tag, so the steering and
    /// slices are unchanged): every slice classifies stateless and Auto
    /// routes the whole sweep onto the BDD fast path.
    fn stateless_pipelined(allow: Vec<(Prefix, Prefix)>) -> (Network, NodeId, NodeId) {
        let (mut net, src, dst) = pipelined(true);
        for name in ["fw1", "fw2"] {
            let fw = net.topo.by_name(name).unwrap();
            net.set_model(fw, models::acl_firewall("stateful-firewall", allow.clone()));
        }
        (net, src, dst)
    }

    #[test]
    fn auto_routes_stateless_slices_to_bdd_and_verdicts_match_smt() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        for inv in [
            Invariant::NodeIsolation { src, dst },
            Invariant::FlowIsolation { src, dst },
            Invariant::DataIsolation { origin: src, dst },
            Invariant::NodeIsolation { src: dst, dst: src },
        ] {
            let auto = Verifier::new(&net, VerifyOptions::default()).unwrap();
            let smt =
                Verifier::new(&net, VerifyOptions { backend: Backend::Smt, ..Default::default() })
                    .unwrap();
            let ra = auto.verify(&inv).unwrap();
            let rs = smt.verify(&inv).unwrap();
            assert_eq!(ra.verdict.holds(), rs.verdict.holds(), "{inv}");
            assert_eq!(ra.scenarios_checked, rs.scenarios_checked, "{inv}");
            assert_eq!(ra.bdd_scenarios, ra.scenarios_checked, "{inv}: all fast-pathed");
            assert_eq!(ra.smt_scenarios, 0, "{inv}");
            assert_eq!(
                ra.solver.decisions + ra.solver.propagations + ra.solver.conflicts,
                0,
                "{inv}: the fast path must not touch a solver"
            );
            assert!(ra.bdd.nodes > 0, "{inv}: bdd work is attributed to the report");
            assert_eq!(rs.bdd_scenarios, 0, "{inv}");
            assert_eq!(rs.smt_scenarios, rs.scenarios_checked, "{inv}");
            if let (
                Verdict::Violated { scenario: sa, .. },
                Verdict::Violated { scenario: ss, .. },
            ) = (&ra.verdict, &rs.verdict)
            {
                assert_eq!(sa, ss, "{inv}: first violating scenario");
            }
        }
    }

    #[test]
    fn bdd_witnesses_replay_on_the_simulator() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let r = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert!(r.bdd_scenarios > 0, "the violation must come from the fast path");
        let Verdict::Violated { trace, scenario } = &r.verdict else {
            panic!("allow-listed traffic reaches dst");
        };
        let receptions = trace.replay(&net, scenario).expect("replay succeeds");
        assert!(
            receptions.iter().any(|o| o.at == dst),
            "the synthesized trace must reproduce the reception at dst:\n{}",
            trace.render(&net)
        );
    }

    #[test]
    fn bdd_traversal_bypass_matches_smt() {
        // Allow-all ACL firewalls with backup steering: under fw1's
        // failure the packet reaches dst via fw2, bypassing fw1.
        let allow = vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let fw1 = net.topo.by_name("fw1").unwrap();
        let inv = Invariant::Traversal { dst, through: vec![fw1], from: Some(src) };
        let auto = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let smt =
            Verifier::new(&net, VerifyOptions { backend: Backend::Smt, ..Default::default() })
                .unwrap();
        let ra = auto.verify(&inv).unwrap();
        let rs = smt.verify(&inv).unwrap();
        assert!(ra.bdd_scenarios > 0);
        assert_eq!(ra.verdict.holds(), rs.verdict.holds());
        assert!(!ra.verdict.holds(), "failure of fw1 lets traffic bypass it");
        if let Verdict::Violated { trace, scenario } = &ra.verdict {
            assert_eq!(scenario.fault_count(), 1);
            let receptions = trace.replay(&net, scenario).expect("replay succeeds");
            assert!(receptions.iter().any(|o| o.at == dst));
        }
    }

    #[test]
    fn auto_with_certificates_stays_on_smt() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let opts = VerifyOptions { emit_proofs: true, ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let r = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(r.bdd_scenarios, 0, "proof emission must force the certified path");
        assert_eq!(r.smt_scenarios, r.scenarios_checked);
        assert!(r.certificate.is_some());
    }

    #[test]
    fn forced_bdd_on_stateful_slice_is_a_clean_error() {
        let (net, src, dst) = pipelined(true); // learning (stateful) firewalls
        let opts = VerifyOptions { backend: Backend::Bdd, ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let err = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap_err();
        let VerifyError::Bdd(msg) = err else {
            panic!("expected a bdd routing error, got: {err}");
        };
        assert!(msg.contains("fw"), "the error names the stateful middlebox: {msg}");
    }

    #[test]
    fn forced_bdd_with_certificates_is_a_clean_error() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let opts = VerifyOptions { backend: Backend::Bdd, emit_proofs: true, ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let err = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap_err();
        assert!(matches!(err, VerifyError::Bdd(_)), "got: {err}");
    }

    #[test]
    fn forced_bdd_matches_auto_on_stateless_slices() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        for incremental in [false, true] {
            let forced = Verifier::new(
                &net,
                VerifyOptions { backend: Backend::Bdd, incremental, ..Default::default() },
            )
            .unwrap();
            let auto =
                Verifier::new(&net, VerifyOptions { incremental, ..Default::default() }).unwrap();
            let inv = Invariant::NodeIsolation { src, dst };
            let rf = forced.verify(&inv).unwrap();
            let ra = auto.verify(&inv).unwrap();
            assert_eq!(rf.verdict.holds(), ra.verdict.holds());
            assert_eq!(rf.bdd_scenarios, ra.bdd_scenarios);
        }
    }

    #[test]
    fn mixed_sweeps_split_scenarios_between_backends() {
        // fw1 becomes a deny-all *stateless* ACL: the no-failure scenario
        // steers through it alone, classifies stateless, and holds on the
        // BDD fast path. Under fw1's failure the backup steering goes via
        // fw2 — an allow-all *learning* (stateful) firewall — so that
        // scenario takes the SMT path and is violated. One invariant, two
        // backends, one report.
        let (mut net, src, dst) = pipelined(true);
        let fw1 = net.topo.by_name("fw1").unwrap();
        net.set_model(fw1, models::acl_firewall("stateful-firewall", vec![]));
        let inv = Invariant::NodeIsolation { src, dst };
        let auto = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let smt =
            Verifier::new(&net, VerifyOptions { backend: Backend::Smt, ..Default::default() })
                .unwrap();
        let ra = auto.verify(&inv).unwrap();
        let rs = smt.verify(&inv).unwrap();
        assert_eq!(ra.verdict.holds(), rs.verdict.holds());
        assert!(!ra.verdict.holds(), "the backup path has no ACL bite");
        assert_eq!(ra.scenarios_checked, rs.scenarios_checked);
        assert_eq!(ra.bdd_scenarios + ra.smt_scenarios, ra.scenarios_checked);
        assert!(ra.bdd_scenarios > 0, "the stateless scenario takes the fast path");
        assert!(ra.smt_scenarios > 0, "the stateful scenario stays on smt");
        assert!(ra.solver.decisions + ra.solver.propagations > 0);
    }

    #[test]
    fn inherited_reports_zero_bdd_stats_but_keep_backend_counts() {
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let inv = Invariant::NodeIsolation { src, dst };
        let reports = v.verify_all(&[inv.clone(), inv], 1).unwrap();
        assert!(reports[0].bdd_scenarios > 0);
        assert!(reports[1].inherited);
        assert_eq!(reports[1].bdd, BddStats::default(), "inherited cost must not double-count");
        assert_eq!(reports[1].bdd_scenarios, reports[0].bdd_scenarios, "provenance is kept");
    }

    #[test]
    fn baseline_steps_is_max_over_scenarios() {
        // Deny-all firewall without a backup: the invariant holds on the
        // no-failure scenario (longer path through fw1, larger bound) and
        // is violated under fw1's failure (direct delivery, smaller
        // bound). The baseline must report the *max* bound over the
        // checked scenarios — not the last one — so its report stays
        // comparable with the incremental engine's.
        let (mut net, src, dst) = pipelined(false);
        for name in ["fw1", "fw2"] {
            let fw = net.topo.by_name(name).unwrap();
            net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));
        }
        let inv = Invariant::NodeIsolation { src, dst };
        let inc = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let base = Verifier::new(&net, VerifyOptions { incremental: false, ..Default::default() })
            .unwrap();
        let ri = inc.verify(&inv).unwrap();
        let rb = base.verify(&inv).unwrap();
        assert!(!rb.verdict.holds(), "failure must bypass the dead firewall");
        assert_eq!(rb.scenarios_checked, 2, "violation found in the failure scenario");
        assert_eq!(rb.steps, ri.steps, "baseline bound must be the max over scenarios");
        assert_eq!(rb.encoded_nodes, ri.encoded_nodes);
    }

    #[test]
    fn swap_network_retires_exactly_the_touched_sessions() {
        let (net, src, dst) = pipelined(true);
        let opts = VerifyOptions { steps_override: Some(4), ..Default::default() };
        let mut v = Verifier::new(&net, opts).unwrap();
        v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1);
        assert!(v.cost_model_entries() > 0);

        // An invariant/scenario-only delta keeps everything warm.
        v.swap_network(v.network().clone(), &TouchSet::Nothing).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "TouchSet::Nothing must not retire sessions");

        // A model swap of a box outside the pooled session's node set
        // keeps it; one inside retires it (and its cost entry).
        v.swap_network(v.network().clone(), &TouchSet::node("no-such-box")).unwrap();
        assert_eq!(v.pooled_sessions(), 1, "disjoint footprint must not retire the session");
        v.swap_network(v.network().clone(), &TouchSet::node("fw1")).unwrap();
        assert_eq!(v.pooled_sessions(), 0, "fw1 is in the pooled slice");
        assert_eq!(v.cost_model_entries(), 0, "cost entries retire with their sessions");

        // Structural deltas retire everything.
        v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert_eq!(v.pooled_sessions(), 1);
        v.swap_network(v.network().clone(), &TouchSet::Everything).unwrap();
        assert_eq!(v.pooled_sessions(), 0);
        assert_eq!(v.cost_model_entries(), 0);

        // And the verifier still verifies correctly afterwards.
        let r = v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
        assert!(!r.verdict.holds());
    }

    #[test]
    fn cost_model_map_stays_bounded_under_topology_churn() {
        // Satellite regression: the pool's per-key EWMA map used to grow
        // without bound as network deltas retired old keys — every churn
        // epoch leaves distinct (node-set, bound) keys behind. Churn the
        // topology so each epoch pools under a *different* key and assert
        // the map never exceeds the live-key count.
        let (net, src, dst) = pipelined(true);
        let mut v =
            Verifier::new(&net, VerifyOptions { steps_override: Some(4), ..Default::default() })
                .unwrap();
        for epoch in 0..6usize {
            // Vary the bound so the session key differs per epoch.
            let mut net2 = (**v.network()).clone();
            let tag = format!("extra{epoch}");
            let h = net2.topo.add_host(&tag, format!("172.16.0.{}", epoch + 1).parse().unwrap());
            let sw = net2.topo.by_name("sw").unwrap();
            net2.topo.add_link(h, sw);
            v.swap_network(Arc::new(net2), &TouchSet::Everything).unwrap();
            v.verify(&Invariant::NodeIsolation { src, dst }).unwrap();
            assert!(
                v.cost_model_entries() <= 1,
                "epoch {epoch}: cost map leaked retired keys ({} entries)",
                v.cost_model_entries()
            );
        }
    }

    #[test]
    fn bdd_lock_poisoning_discards_and_rebuilds_the_dataplane() {
        // Satellite regression: the shared dataplane cache is guarded by
        // a Mutex added after the pool's poison-recovery fix; a panicking
        // thread must not wedge (or corrupt) later fast-path checks.
        let allow = vec![(px("8.0.0.0/8"), px("10.0.0.0/24"))];
        let (net, src, dst) = stateless_pipelined(allow);
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let inv = Invariant::NodeIsolation { src, dst };
        let first = v.verify(&inv).unwrap();
        assert!(first.bdd_scenarios > 0, "the sweep must exercise the dataplane");
        std::thread::scope(|s| {
            let t = s.spawn(|| {
                let _guard = v.bdd.lock().unwrap();
                panic!("worker dies holding the dataplane lock");
            });
            assert!(t.join().is_err());
        });
        assert!(v.bdd.is_poisoned(), "the test must actually poison the lock");
        // Recovery discards the cached dataplane and rebuilds lazily: the
        // verdict is reproduced and fresh bdd work is attributed.
        let again = v.verify(&inv).unwrap();
        assert_eq!(first.verdict.holds(), again.verdict.holds());
        assert!(again.bdd.nodes > 0, "the rebuilt dataplane did the work");
        assert!(!v.bdd.is_poisoned(), "recovery must clear the poison");
    }

    #[test]
    fn verify_under_restricts_the_sweep() {
        let (net, src, dst) = pipelined(false); // fail fw1 => violated
        let v = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let inv = Invariant::NodeIsolation { src, dst };

        // Empty list: trivially holds, no solver work.
        let r = v.verify_under(&inv, Vec::new()).unwrap();
        assert!(r.verdict.holds());
        assert_eq!(r.scenarios_checked, 0);
        assert_eq!(r.solver.decisions + r.solver.propagations + r.solver.conflicts, 0);

        // The no-failure scenario alone: the firewall does its job.
        let r = v.verify_under(&inv, vec![vmn_net::FailureScenario::none()]).unwrap();
        assert!(!r.verdict.holds(), "allow-all firewall forwards the probe");

        // The failure scenario alone: first violation is that scenario.
        let fw1 = net.topo.by_name("fw1").unwrap();
        let fail = vmn_net::FailureScenario::nodes([fw1]);
        let r = v.verify_under(&inv, vec![fail.clone()]).unwrap();
        let Verdict::Violated { scenario, .. } = r.verdict else {
            panic!("failure bypass must violate");
        };
        assert_eq!(scenario, fail);

        // And the full sweep equals verify().
        let full = v.verify_under(&inv, v.network().all_scenarios()).unwrap();
        let direct = v.verify(&inv).unwrap();
        assert_eq!(full.verdict.holds(), direct.verdict.holds());
        assert_eq!(full.scenarios_checked, direct.scenarios_checked);
    }

    /// Two buildings behind in-line ACL firewalls that only pass
    /// building-local sources outbound: cross-building isolation holds,
    /// intra-building traffic flows.
    ///
    /// ```text
    /// a1, a2 - bsw1 - fw1 - core - fw2 - bsw2 - b1, b2
    /// ```
    fn two_buildings() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a1 = topo.add_host("a1", "10.1.0.1".parse().unwrap());
        let a2 = topo.add_host("a2", "10.1.0.2".parse().unwrap());
        let b1 = topo.add_host("b1", "10.2.0.1".parse().unwrap());
        let b2 = topo.add_host("b2", "10.2.0.2".parse().unwrap());
        let bsw1 = topo.add_switch("bsw1");
        let bsw2 = topo.add_switch("bsw2");
        let core = topo.add_switch("core");
        let fw1 = topo.add_middlebox("fw1", "acl-firewall-1", vec![]);
        let fw2 = topo.add_middlebox("fw2", "acl-firewall-2", vec![]);
        for (x, y) in [(a1, bsw1), (a2, bsw1), (bsw1, fw1), (fw1, core)] {
            topo.add_link(x, y);
        }
        for (x, y) in [(b1, bsw2), (b2, bsw2), (bsw2, fw2), (fw2, core)] {
            topo.add_link(x, y);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &vmn_net::FailureScenario::none());
        // The firewalls sit in line and BFS routing never transits a
        // terminal, so the inter-building legs are explicit rules. They
        // are `from`-scoped so a firewall's re-emission continues toward
        // the far side instead of bouncing straight back into it.
        let a_net = px("10.1.0.0/16");
        let b_net = px("10.2.0.0/16");
        for h in [a1, a2] {
            tables.add_rule(bsw1, Rule::from_neighbor(b_net, h, fw1).with_priority(10));
        }
        for h in [b1, b2] {
            tables.add_rule(bsw2, Rule::from_neighbor(a_net, h, fw2).with_priority(10));
        }
        tables.add_rule(core, Rule::from_neighbor(b_net, fw1, fw2));
        tables.add_rule(core, Rule::from_neighbor(a_net, fw2, fw1));
        let mut net = Network::new(topo, tables);
        let all = px("0.0.0.0/0");
        net.set_model(fw1, models::acl_firewall("acl-firewall-1", vec![(px("10.1.0.0/16"), all)]));
        net.set_model(fw2, models::acl_firewall("acl-firewall-2", vec![(px("10.2.0.0/16"), all)]));
        net.add_scenario(vmn_net::FailureScenario::nodes([fw2]));
        (net, a1, a2, b1, b2)
    }

    #[test]
    fn modular_contract_fast_path_answers_cross_module_isolation() {
        let (net, a1, a2, b1, _b2) = two_buildings();
        let opts = VerifyOptions { partition: PartitionMode::Auto, ..Default::default() };
        let v = Verifier::new(&net, opts).unwrap();
        let ctx = v.modular_context().expect("auto partition installed");
        assert!(ctx.module_count() > 1, "the estate must actually split");

        // Cross-module isolation: proven by the boundary contracts
        // alone, in every scenario, with nothing encoded.
        let inv = Invariant::NodeIsolation { src: a1, dst: b1 };
        let r = v.verify(&inv).unwrap();
        assert!(r.verdict.holds());
        assert_eq!(r.contract_scenarios, r.scenarios_checked, "{inv}");
        assert_eq!(r.smt_scenarios + r.bdd_scenarios, 0, "{inv}");

        // The monolithic engine agrees (and does real work).
        let mono = Verifier::new(&net, VerifyOptions::default()).unwrap();
        let rm = mono.verify(&inv).unwrap();
        assert!(rm.verdict.holds());
        assert_eq!(rm.contract_scenarios, 0);
        assert_eq!(rm.smt_scenarios + rm.bdd_scenarios, rm.scenarios_checked);

        // Intra-module traffic is out of the contracts' reach: the exact
        // engine answers, and both engines see the same violation.
        let local = Invariant::NodeIsolation { src: a2, dst: a1 };
        let r = v.verify(&local).unwrap();
        let rm = mono.verify(&local).unwrap();
        assert!(!r.verdict.holds(), "building-local traffic flows");
        assert_eq!(r.contract_scenarios, 0);
        assert!(!rm.verdict.holds());
        let (Verdict::Violated { scenario: s, .. }, Verdict::Violated { scenario: sm, .. }) =
            (&r.verdict, &rm.verdict)
        else {
            panic!("both violated");
        };
        assert_eq!(s, sm, "first violating scenario matches the oracle");
    }

    #[test]
    fn modular_baseline_sweep_matches_incremental() {
        let (net, a1, _a2, b1, b2) = two_buildings();
        for incremental in [false, true] {
            let opts =
                VerifyOptions { partition: PartitionMode::Auto, incremental, ..Default::default() };
            let v = Verifier::new(&net, opts).unwrap();
            let r = v.verify(&Invariant::FlowIsolation { src: b2, dst: b1 }).unwrap();
            // Same module: exact engine; flow isolation is violated by a
            // direct unsolicited send.
            assert!(!r.verdict.holds());
            assert_eq!(r.contract_scenarios, 0, "incremental={incremental}");
            let r = v.verify(&Invariant::FlowIsolation { src: a1, dst: b1 }).unwrap();
            assert!(r.verdict.holds());
            assert_eq!(r.contract_scenarios, r.scenarios_checked, "incremental={incremental}");
        }
    }

    #[test]
    fn explicit_contracts_are_validated_and_composed() {
        use vmn_analysis::{Module, ModuleContract, Partition, PortContract, WindowSet};
        let (net, ..) = two_buildings();
        let b1_nodes = ["a1", "a2", "bsw1", "fw1"];
        let rest = ["b1", "b2", "bsw2", "fw2", "core"];
        let partition = Partition {
            modules: vec![
                Module {
                    name: "building-1".into(),
                    nodes: b1_nodes.iter().map(|s| s.to_string()).collect(),
                },
                Module { name: "rest".into(), nodes: rest.iter().map(|s| s.to_string()).collect() },
            ],
        };

        // A sound egress guarantee: building 1 only emits 10.1/16
        // sources (the firewall's ACL), toward anything.
        let sound = ModuleContract {
            module: "building-1".into(),
            ingress: vec![],
            egress: vec![PortContract {
                from: "fw1".into(),
                to: "core".into(),
                windows: WindowSet::window(px("10.1.0.0/16"), px("0.0.0.0/0")),
            }],
        };
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit {
                partition: partition.clone(),
                contracts: vec![sound.clone()],
            },
            ..Default::default()
        };
        let v = Verifier::new(&net, opts).unwrap();
        assert_eq!(v.modular_context().unwrap().module_count(), 2);

        // An under-approximating guarantee must be rejected as a typed
        // contract error, never silently accepted.
        let unsound = ModuleContract {
            egress: vec![PortContract {
                from: "fw1".into(),
                to: "core".into(),
                windows: WindowSet::window(px("192.168.0.0/16"), px("0.0.0.0/0")),
            }],
            ..sound.clone()
        };
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit {
                partition: partition.clone(),
                contracts: vec![unsound],
            },
            ..Default::default()
        };
        let err = Verifier::new(&net, opts).map(|_| ()).expect_err("unsound contract");
        assert!(matches!(err, VerifyError::Contract(ContractError::Unsound { .. })), "got {err}");

        // A neighbour assumption narrower than the guarantee fails the
        // composition check.
        let narrow_ingress = ModuleContract {
            module: "rest".into(),
            ingress: vec![PortContract {
                from: "fw1".into(),
                to: "core".into(),
                windows: WindowSet::window(px("10.1.7.0/24"), px("0.0.0.0/0")),
            }],
            egress: vec![],
        };
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit {
                partition: partition.clone(),
                contracts: vec![sound.clone(), narrow_ingress],
            },
            ..Default::default()
        };
        let err = Verifier::new(&net, opts).map(|_| ()).expect_err("non-composing contracts");
        assert!(matches!(err, VerifyError::Contract(_)), "got {err}");

        // A contract on a non-boundary edge is a typed error too.
        let off_edge = ModuleContract {
            egress: vec![PortContract {
                from: "bsw1".into(),
                to: "fw1".into(),
                windows: WindowSet::any(),
            }],
            ..sound
        };
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit { partition, contracts: vec![off_edge] },
            ..Default::default()
        };
        let err = Verifier::new(&net, opts).map(|_| ()).expect_err("non-boundary edge");
        assert!(
            matches!(err, VerifyError::Contract(ContractError::UnknownEdge { .. })),
            "got {err}"
        );
    }

    #[test]
    fn degenerate_partitions_recover_the_monolithic_engine() {
        use vmn_analysis::Partition;
        let (net, a1, _a2, b1, _b2) = two_buildings();
        let names: Vec<String> = net.topo.nodes().map(|(_, n)| n.name.clone()).collect();
        let inv = Invariant::NodeIsolation { src: a1, dst: b1 };

        // One module: no pair is cross-module, so the contract path
        // never fires and the engine is exactly the monolithic one.
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit {
                partition: Partition::monolithic(names.clone()),
                contracts: vec![],
            },
            ..Default::default()
        };
        let v = Verifier::new(&net, opts).unwrap();
        let r = v.verify(&inv).unwrap();
        assert!(r.verdict.holds());
        assert_eq!(r.contract_scenarios, 0);
        assert_eq!(r.smt_scenarios + r.bdd_scenarios, r.scenarios_checked);

        // Per-node modules: every pair is cross-module; the contracts
        // answer whatever they can prove and the verdict is unchanged.
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit {
                partition: Partition::per_node(names),
                contracts: vec![],
            },
            ..Default::default()
        };
        let v = Verifier::new(&net, opts).unwrap();
        let r = v.verify(&inv).unwrap();
        assert!(r.verdict.holds());
        assert_eq!(r.contract_scenarios, r.scenarios_checked);
    }

    #[test]
    fn swap_network_revalidates_contracts() {
        use vmn_analysis::{Module, ModuleContract, Partition, PortContract, WindowSet};
        let (mut net, a1, _a2, b1, _b2) = two_buildings();
        // Stricter building policy: only a1 may leave, and the declared
        // guarantee promises exactly that.
        let fw1 = net.topo.by_name("fw1").unwrap();
        net.set_model(
            fw1,
            models::acl_firewall("acl-firewall-1", vec![(px("10.1.0.1/32"), px("0.0.0.0/0"))]),
        );
        let names_b1 = ["a1", "a2", "bsw1", "fw1"];
        let rest = ["b1", "b2", "bsw2", "fw2", "core"];
        let partition = Partition {
            modules: vec![
                Module {
                    name: "building-1".into(),
                    nodes: names_b1.iter().map(|s| s.to_string()).collect(),
                },
                Module { name: "rest".into(), nodes: rest.iter().map(|s| s.to_string()).collect() },
            ],
        };
        let tight = ModuleContract {
            module: "building-1".into(),
            ingress: vec![],
            egress: vec![PortContract {
                from: "fw1".into(),
                to: "core".into(),
                windows: WindowSet::window(px("10.1.0.1/32"), px("0.0.0.0/0")),
            }],
        };
        let opts = VerifyOptions {
            partition: PartitionMode::Explicit { partition, contracts: vec![tight] },
            ..Default::default()
        };
        let mut v = Verifier::new(&net, opts).unwrap();
        assert!(v.verify(&Invariant::NodeIsolation { src: a1, dst: b1 }).unwrap().verdict.holds());

        // Swap in an epoch whose fw1 lets the whole building out: the
        // synthesized crossing gains a2's sources, which the declared
        // guarantee does not cover, so the swap must refuse with the
        // typed contract error.
        let mut wide = net.clone();
        wide.set_model(
            fw1,
            models::acl_firewall("acl-firewall-1", vec![(px("10.1.0.0/16"), px("0.0.0.0/0"))]),
        );
        let touched = TouchSet::Nodes(std::iter::once("fw1".to_string()).collect());
        let err = v.swap_network(Arc::new(wide), &touched).expect_err("widened crossings");
        assert!(matches!(err, VerifyError::Contract(ContractError::Unsound { .. })), "got {err}");
    }
}
