//! Policy equivalence classes and invariant symmetry (§4.1–§4.2).
//!
//! Two hosts belong to the same *policy equivalence class* when all
//! packets they send and receive traverse the same middlebox types and
//! are treated according to the same policy. Classes are computed by
//! partition refinement: start with hosts grouped by their static policy
//! fingerprint (which ACL entries mention them) and repeatedly split
//! classes whose members see different middlebox-type pipelines towards
//! the current classes' representatives, until a fixpoint.
//!
//! Symmetric invariants — those obtained from one another by replacing
//! nodes with same-class nodes — share verdicts, so
//! [`group_by_symmetry`] lets the engine verify one representative per
//! group (§4.2).

use crate::invariant::Invariant;
use crate::network::Network;
use std::collections::HashMap;
use vmn_net::{FailureScenario, NodeId, TransferFunction};

/// A partition of the network's hosts into policy equivalence classes.
#[derive(Clone, Debug)]
pub struct PolicyClasses {
    /// Hosts of each class.
    pub classes: Vec<Vec<NodeId>>,
    class_of: HashMap<NodeId, usize>,
}

impl PolicyClasses {
    /// Builds classes from an explicit grouping (scenario generators know
    /// their policy groups; the paper's operators configure networks in
    /// terms of such groups).
    pub fn from_groups(groups: Vec<Vec<NodeId>>) -> PolicyClasses {
        let class_of =
            groups.iter().enumerate().flat_map(|(i, g)| g.iter().map(move |&h| (h, i))).collect();
        PolicyClasses { classes: groups, class_of }
    }

    /// Computes classes by partition refinement over the no-failure
    /// transfer function and the middlebox configurations.
    pub fn compute(net: &Network) -> PolicyClasses {
        let scenario = FailureScenario::none();
        let tf = TransferFunction::new(&net.topo, &net.tables, &scenario);
        let hosts: Vec<NodeId> = net.topo.hosts().collect();

        // Static fingerprint: which ACL prefix entries (across all
        // middlebox models) match the host's address, plus the middlebox
        // types adjacent on its own traffic.
        let mut fingerprint: HashMap<NodeId, Vec<bool>> = HashMap::new();
        for &h in &hosts {
            let addr = net.host_address(h);
            let mut bits = Vec::new();
            let mut mbox_ids: Vec<NodeId> = net.topo.middleboxes().collect();
            mbox_ids.sort();
            for m in mbox_ids {
                let model = net.model(m);
                for (_, pairs) in &model.acls {
                    for (sp, dp) in pairs {
                        bits.push(sp.contains(addr));
                        bits.push(dp.contains(addr));
                    }
                }
                for rule in &model.rules {
                    for action in &rule.actions {
                        if let vmn_mbox::Action::RewriteDstOneOf(addrs) = action {
                            bits.push(addrs.contains(&addr));
                        }
                    }
                }
            }
            fingerprint.insert(h, bits);
        }

        // Initial partition by fingerprint.
        let mut class_of: HashMap<NodeId, usize> = HashMap::new();
        {
            let mut seen: HashMap<Vec<bool>, usize> = HashMap::new();
            for &h in &hosts {
                let f = fingerprint[&h].clone();
                let next = seen.len();
                let c = *seen.entry(f).or_insert(next);
                class_of.insert(h, c);
            }
        }

        // Refinement: split by pipeline signatures against class
        // representatives. When probing a host's own class, use another
        // member as the representative (a host compared against itself
        // would see a meaningless path and split spuriously).
        loop {
            let mut members: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for &h in &hosts {
                members.entry(class_of[&h]).or_default().push(h);
            }
            let mut class_list: Vec<usize> = members.keys().copied().collect();
            class_list.sort();

            let mut sigs: HashMap<NodeId, Vec<(usize, Vec<String>, Vec<String>)>> = HashMap::new();
            for &h in &hosts {
                let mut sig = Vec::new();
                for &c in &class_list {
                    let rep = members[&c].iter().copied().find(|&r| r != h);
                    let Some(rep) = rep else {
                        continue; // h is the sole member: nothing to probe
                    };
                    let fwd = pipeline_types(net, &tf, h, rep);
                    let back = pipeline_types(net, &tf, rep, h);
                    sig.push((c, fwd, back));
                }
                sigs.insert(h, sig);
            }

            let mut new_class: HashMap<(usize, Vec<(usize, Vec<String>, Vec<String>)>), usize> =
                HashMap::new();
            let mut next_of: HashMap<NodeId, usize> = HashMap::new();
            for &h in &hosts {
                let key = (class_of[&h], sigs[&h].clone());
                let n = new_class.len();
                let c = *new_class.entry(key).or_insert(n);
                next_of.insert(h, c);
            }
            let stable = hosts.iter().all(|h| {
                hosts.iter().all(|g| (class_of[h] == class_of[g]) == (next_of[h] == next_of[g]))
            });
            class_of = next_of;
            if stable {
                break;
            }
        }

        let num = class_of.values().copied().max().map_or(0, |m| m + 1);
        let mut classes = vec![Vec::new(); num];
        for &h in &hosts {
            classes[class_of[&h]].push(h);
        }
        classes.iter_mut().for_each(|c| c.sort());
        PolicyClasses { classes, class_of }
    }

    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    pub fn class_of(&self, h: NodeId) -> Option<usize> {
        self.class_of.get(&h).copied()
    }

    /// One representative host per class.
    pub fn representatives(&self) -> Vec<NodeId> {
        self.classes.iter().filter_map(|c| c.first().copied()).collect()
    }

    pub fn same_class(&self, a: NodeId, b: NodeId) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// The middlebox-type pipeline between two hosts (marker entry on static
/// datapath errors so broken paths never merge with working ones).
fn pipeline_types(
    net: &Network,
    tf: &TransferFunction<'_>,
    from: NodeId,
    to: NodeId,
) -> Vec<String> {
    let addr = net.host_address(to);
    match tf.terminal_path(from, addr) {
        Ok((mboxes, end)) => {
            let mut types: Vec<String> =
                mboxes.iter().filter_map(|&m| net.topo.mbox_type(m).map(str::to_string)).collect();
            types.push(match end {
                Some(_) => "delivered".to_string(),
                None => "dropped".to_string(),
            });
            types
        }
        Err(_) => vec!["error".to_string()],
    }
}

/// Symmetry signature of an invariant: its kind, the policy classes of
/// its host endpoints, and the types of referenced middleboxes.
pub fn symmetry_key(net: &Network, pc: &PolicyClasses, inv: &Invariant) -> String {
    let class = |n: NodeId| match pc.class_of(n) {
        Some(c) => format!("c{c}"),
        None => format!("{:?}", n), // non-host endpoints keep identity
    };
    match inv {
        Invariant::NodeIsolation { src, dst } => {
            format!("node-iso:{}:{}", class(*src), class(*dst))
        }
        Invariant::FlowIsolation { src, dst } => {
            format!("flow-iso:{}:{}", class(*src), class(*dst))
        }
        Invariant::DataIsolation { origin, dst } => {
            format!("data-iso:{}:{}", class(*origin), class(*dst))
        }
        Invariant::Traversal { dst, through, from } => {
            let mut types: Vec<&str> =
                through.iter().filter_map(|&m| net.topo.mbox_type(m)).collect();
            types.sort();
            format!(
                "traversal:{}:{}:{}",
                class(*dst),
                types.join(","),
                from.map(class).unwrap_or_else(|| "*".into())
            )
        }
    }
}

/// Groups invariant indices by symmetry; each group's first element is the
/// representative to actually verify.
pub fn group_by_symmetry(
    net: &Network,
    pc: &PolicyClasses,
    invariants: &[Invariant],
) -> Vec<Vec<usize>> {
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, inv) in invariants.iter().enumerate() {
        groups.entry(symmetry_key(net, pc, inv)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Address, Prefix, RoutingConfig, Rule, Topology};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Two "web" hosts treated identically and one "admin" host with
    /// extra firewall privileges.
    fn asymmetric_net() -> (Network, Vec<NodeId>) {
        let mut topo = Topology::new();
        let web1 = topo.add_host("web1", addr("10.0.1.1"));
        let web2 = topo.add_host("web2", addr("10.0.1.2"));
        let admin = topo.add_host("admin", addr("10.0.2.1"));
        let ext = topo.add_host("ext", addr("8.8.8.8"));
        let sw = topo.add_switch("sw");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        for n in [web1, web2, admin, ext, fw] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        // Traffic from ext to anybody goes through the firewall.
        tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), ext, fw).with_priority(10));
        let mut net = Network::new(topo, tables);
        // Firewall: admin may be contacted from outside; web hosts not.
        net.set_model(
            fw,
            models::learning_firewall(
                "stateful-firewall",
                vec![(px("0.0.0.0/0"), px("10.0.2.0/24"))],
            ),
        );
        (net, vec![web1, web2, admin, ext])
    }

    #[test]
    fn refinement_groups_equivalent_hosts() {
        let (net, hosts) = asymmetric_net();
        let pc = PolicyClasses::compute(&net);
        let (web1, web2, admin, ext) = (hosts[0], hosts[1], hosts[2], hosts[3]);
        assert!(pc.same_class(web1, web2), "identical web hosts share a class");
        assert!(!pc.same_class(web1, admin), "admin is treated differently by the ACL");
        assert!(!pc.same_class(web1, ext), "external host differs");
    }

    #[test]
    fn explicit_groups_respected() {
        let (_, hosts) = asymmetric_net();
        let pc = PolicyClasses::from_groups(vec![vec![hosts[0], hosts[1]], vec![hosts[2]]]);
        assert_eq!(pc.num_classes(), 2);
        assert!(pc.same_class(hosts[0], hosts[1]));
        assert_eq!(pc.class_of(hosts[3]), None);
    }

    #[test]
    fn symmetric_invariants_grouped() {
        let (net, hosts) = asymmetric_net();
        let pc = PolicyClasses::compute(&net);
        let (web1, web2, _admin, ext) = (hosts[0], hosts[1], hosts[2], hosts[3]);
        let invs = vec![
            Invariant::NodeIsolation { src: ext, dst: web1 },
            Invariant::NodeIsolation { src: ext, dst: web2 },
            Invariant::FlowIsolation { src: ext, dst: web1 },
        ];
        let groups = group_by_symmetry(&net, &pc, &invs);
        assert_eq!(groups.len(), 2, "the two node-isolation invariants are symmetric");
        assert!(groups.iter().any(|g| g.len() == 2));
    }
}
