//! # VMN — Verifying Reachability in Networks with Mutable Datapaths
//!
//! A from-scratch reproduction of the NSDI 2017 paper by Panda, Lahav,
//! Argyraki, Sagiv and Shenker. VMN verifies *reachability invariants* —
//! simple isolation, flow isolation, data isolation, middlebox traversal —
//! in networks whose forwarding behaviour depends on packet history
//! (stateful firewalls, NATs, caches, load balancers, IDPSes, …), and does
//! so scalably by verifying on *slices* whose size is independent of the
//! network, exploiting *policy equivalence classes* and *symmetry*.
//!
//! The pipeline:
//!
//! 1. describe the network ([`Network`]: topology + forwarding tables +
//!    a middlebox model per mutable element + failure scenarios),
//! 2. state invariants ([`Invariant`]),
//! 3. run the [`Verifier`] — it finds a slice, computes a trace bound,
//!    encodes the negated invariant as an SMT formula (the in-repo solver
//!    in `vmn-smt` plays the role of Z3) and either proves the invariant
//!    or extracts a [`Trace`] that replays on the concrete simulator.
//!
//! ```
//! use vmn::{Invariant, Network, Verifier, VerifyOptions};
//! use vmn_mbox::models;
//! use vmn_net::{FailureScenario, Prefix, RoutingConfig, Rule, Topology};
//!
//! // outside --- sw --- inside, with a stateful firewall on the path.
//! let mut topo = Topology::new();
//! let outside = topo.add_host("outside", "8.8.8.8".parse().unwrap());
//! let inside = topo.add_host("inside", "10.0.0.5".parse().unwrap());
//! let sw = topo.add_switch("sw");
//! let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
//! topo.add_link(outside, sw);
//! topo.add_link(inside, sw);
//! topo.add_link(fw, sw);
//!
//! let mut rc = RoutingConfig::new();
//! rc.host_routes(&topo);
//! let mut tables = rc.build(&topo, &FailureScenario::none());
//! // Anything from outside is pipelined through the firewall.
//! let all: Prefix = "0.0.0.0/0".parse().unwrap();
//! tables.add_rule(sw, Rule::from_neighbor(all, outside, fw).with_priority(10));
//!
//! let mut net = Network::new(topo, tables);
//! // The firewall only lets inside-initiated flows through.
//! net.set_model(fw, models::learning_firewall(
//!     "stateful-firewall",
//!     vec![("10.0.0.0/8".parse().unwrap(), all)],
//! ));
//!
//! let verifier = Verifier::new(&net, VerifyOptions::default()).unwrap();
//! // Unsolicited traffic from outside must not reach the inside host:
//! let report = verifier
//!     .verify(&Invariant::FlowIsolation { src: outside, dst: inside })
//!     .unwrap();
//! assert!(report.verdict.holds());
//! ```

#![forbid(unsafe_code)]

pub mod bounds;
pub mod encoder;
pub mod engine;
pub mod invariant;
pub mod modular;
pub mod network;
pub mod policy;
pub mod slice;
pub mod trace;

pub use engine::{Backend, PartitionMode, Report, Verdict, Verifier, VerifyError, VerifyOptions};
pub use invariant::Invariant;
pub use network::Network;
pub use policy::PolicyClasses;
pub use trace::{StepKind, Trace, TraceStep};
/// Model static analysis (re-exported): inferred statefulness /
/// parallelism, footprints, dead-arm diagnostics, and the
/// annotation-soundness gate [`Network::validate`] runs per model.
pub use vmn_analysis as analysis;
/// The trusted certificate checker (re-exported): validates the
/// [`Report::certificate`] bundles produced under
/// [`VerifyOptions::emit_proofs`] without touching any solver code.
pub use vmn_check as check;
