//! Slice discovery (§4 / §4.1).
//!
//! A *slice* is a subnetwork closed under forwarding and state; an
//! invariant referencing only slice members holds on the network iff it
//! holds on the slice. For networks of flow-parallel middleboxes, a
//! forwarding-closed subnetwork containing the invariant's endpoints
//! suffices; when origin-agnostic middleboxes (content caches) are
//! involved, the slice additionally needs one representative host per
//! policy equivalence class so that every distinguishable way of
//! installing shared state is represented.
//!
//! Closure is computed as a fixpoint: starting from the invariant's
//! endpoints, follow the static datapath between every pair of in-slice
//! terminals (both directions) and admit every middlebox encountered;
//! middlebox models that rewrite packets toward other addresses (load
//! balancers, NATs) pull the owners of those addresses in as well.

use crate::invariant::Invariant;
use crate::network::Network;
use crate::policy::PolicyClasses;
use std::collections::BTreeSet;
use vmn_mbox::Parallelism;
use vmn_net::{Address, FailureScenario, NetError, NodeId, TransferFunction};

/// Computes the slice for verifying `inv` under `scenario`.
///
/// Returns the terminal set (hosts and middleboxes), sorted. The result
/// always contains the invariant's endpoints; with `use_slices == false`
/// callers should instead pass every terminal to the encoder.
pub fn compute_slice(
    net: &Network,
    scenario: &FailureScenario,
    inv: &Invariant,
    policy: &PolicyClasses,
) -> Result<Vec<NodeId>, NetError> {
    let tf = TransferFunction::new(&net.topo, &net.tables, scenario);
    let mut set: BTreeSet<NodeId> = inv.endpoints().into_iter().collect();

    let mut changed = true;
    let mut added_policy_reps = false;
    while changed {
        changed = false;

        // Forwarding closure over every in-slice (source, destination
        // address) pair.
        let members: Vec<NodeId> = set.iter().copied().collect();
        let mut dest_addrs: Vec<Address> = Vec::new();
        for &n in &members {
            dest_addrs.extend(net.topo.node(n).addresses.iter().copied());
            if net.topo.node(n).kind.is_middlebox() {
                dest_addrs.extend(net.model_referenced_addresses(n));
            }
        }
        dest_addrs.sort();
        dest_addrs.dedup();

        for &from in &members {
            if scenario.is_failed(from) {
                continue;
            }
            for &a in &dest_addrs {
                let (mboxes, end) = tf.terminal_path(from, a)?;
                for m in mboxes {
                    changed |= set.insert(m);
                }
                if let Some(t) = end {
                    changed |= set.insert(t);
                }
            }
        }

        // Owners of middlebox-referenced addresses (LB backends, NAT
        // external addresses) join the slice.
        for &n in &members {
            if !net.topo.node(n).kind.is_middlebox() {
                continue;
            }
            for a in net.model_referenced_addresses(n) {
                if let Some(owner) = net.topo.terminal_for_address(a) {
                    changed |= set.insert(owner);
                }
            }
        }

        // Origin-agnostic middleboxes require a representative per policy
        // equivalence class (done once; re-closure continues afterwards).
        if !added_policy_reps {
            let needs_reps = set.iter().any(|&n| {
                net.topo.node(n).kind.is_middlebox()
                    && !matches!(net.model(n).parallelism, Parallelism::FlowParallel)
            });
            if needs_reps {
                added_policy_reps = true;
                for rep in policy.representatives() {
                    changed |= set.insert(rep);
                }
            }
        }
    }

    Ok(set.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Prefix, RoutingConfig, Rule, Topology};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Many host pairs, each pair isolated behind a shared firewall; a
    /// slice for one pair must not include the others.
    fn many_pairs(n: usize) -> (Network, Vec<(NodeId, NodeId)>) {
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        topo.add_link(fw, sw);
        let mut pairs = Vec::new();
        for i in 0..n {
            let a = topo.add_host(format!("a{i}"), Address(0x0A000000 + i as u32 * 256 + 1));
            let b = topo.add_host(format!("b{i}"), Address(0x0A000000 + i as u32 * 256 + 2));
            topo.add_link(a, sw);
            topo.add_link(b, sw);
            pairs.push((a, b));
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        // Everything goes through the firewall once: packets arriving from
        // any host are steered to fw; fw re-emissions go direct.
        for &(a, b) in &pairs {
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), a, fw).with_priority(10));
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), b, fw).with_priority(10));
        }
        let mut net = Network::new(topo, tables);
        net.set_model(
            fw,
            models::learning_firewall(
                "stateful-firewall",
                vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))],
            ),
        );
        (net, pairs)
    }

    #[test]
    fn slice_is_independent_of_network_size() {
        for n in [2usize, 8, 32] {
            let (net, pairs) = many_pairs(n);
            let pc = PolicyClasses::from_groups(vec![]);
            let inv = Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[0].1 };
            let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
            // Slice = the two endpoints + the firewall, regardless of n.
            assert_eq!(slice.len(), 3, "n={n}: slice {slice:?}");
        }
    }

    #[test]
    fn slice_contains_endpoints_and_path_mboxes() {
        let (net, pairs) = many_pairs(4);
        let pc = PolicyClasses::from_groups(vec![]);
        let inv = Invariant::NodeIsolation { src: pairs[2].0, dst: pairs[2].1 };
        let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
        assert!(slice.contains(&pairs[2].0));
        assert!(slice.contains(&pairs[2].1));
        let fw = net.topo.by_name("fw").unwrap();
        assert!(slice.contains(&fw));
    }

    #[test]
    fn origin_agnostic_boxes_pull_in_policy_reps() {
        // A cache between clients and a server: slice must include one
        // representative per policy class.
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let server = topo.add_host("server", addr("10.1.0.1"));
        let c1 = topo.add_host("c1", addr("10.2.0.1"));
        let c2 = topo.add_host("c2", addr("10.2.0.2"));
        let other = topo.add_host("other", addr("10.3.0.1"));
        let cache = topo.add_middlebox("cache", "content-cache", vec![]);
        for n in [server, c1, c2, other, cache] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        for h in [c1, c2, other] {
            tables.add_rule(sw, Rule::from_neighbor(px("10.1.0.0/16"), h, cache).with_priority(10));
        }
        tables
            .add_rule(sw, Rule::from_neighbor(px("10.2.0.0/15"), server, cache).with_priority(10));
        let mut net = Network::new(topo, tables);
        net.set_model(cache, models::content_cache("content-cache", [px("10.1.0.0/16")], vec![]));

        let pc = PolicyClasses::from_groups(vec![vec![c1, c2], vec![other], vec![server]]);
        let inv = Invariant::DataIsolation { origin: server, dst: other };
        let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
        // other + server (endpoints), cache (on path), plus a rep for the
        // {c1, c2} class (c1).
        assert!(slice.contains(&cache));
        assert!(slice.contains(&c1), "needs a representative of the client class: {slice:?}");
        assert!(!slice.contains(&c2), "one representative suffices: {slice:?}");
    }
}
