//! Slice discovery (§4 / §4.1).
//!
//! A *slice* is a subnetwork closed under forwarding and state; an
//! invariant referencing only slice members holds on the network iff it
//! holds on the slice. For networks of flow-parallel middleboxes, a
//! forwarding-closed subnetwork containing the invariant's endpoints
//! suffices; when origin-agnostic middleboxes (content caches) are
//! involved, the slice additionally needs one representative host per
//! policy equivalence class so that every distinguishable way of
//! installing shared state is represented.
//!
//! Closure is computed as a fixpoint: starting from the invariant's
//! endpoints, follow the static datapath between every pair of in-slice
//! terminals (both directions) and admit every middlebox encountered;
//! middlebox models that rewrite packets toward other addresses (load
//! balancers, NATs) pull the owners of those addresses in as well.

use crate::invariant::Invariant;
use crate::network::Network;
use crate::policy::PolicyClasses;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use vmn_mbox::Parallelism;
use vmn_net::{Address, FailureScenario, HeaderClasses, NetError, NodeId, TransferFunction};

/// Computes the slice for verifying `inv` under `scenario`.
///
/// Returns the terminal set (hosts and middleboxes), sorted. The result
/// always contains the invariant's endpoints; with `use_slices == false`
/// callers should instead pass every terminal to the encoder.
pub fn compute_slice(
    net: &Network,
    scenario: &FailureScenario,
    inv: &Invariant,
    policy: &PolicyClasses,
) -> Result<Vec<NodeId>, NetError> {
    let tf = TransferFunction::new(&net.topo, &net.tables, scenario);
    let mut set: BTreeSet<NodeId> = inv.endpoints().into_iter().collect();

    let mut changed = true;
    let mut added_policy_reps = false;
    while changed {
        changed = false;

        // Forwarding closure over every in-slice (source, destination
        // address) pair.
        let members: Vec<NodeId> = set.iter().copied().collect();
        let mut dest_addrs: Vec<Address> = Vec::new();
        for &n in &members {
            dest_addrs.extend(net.topo.node(n).addresses.iter().copied());
            if net.topo.node(n).kind.is_middlebox() {
                dest_addrs.extend(net.model_referenced_addresses(n));
            }
        }
        dest_addrs.sort();
        dest_addrs.dedup();

        for &from in &members {
            if scenario.is_failed(from) {
                continue;
            }
            for &a in &dest_addrs {
                let (mboxes, end) = tf.terminal_path(from, a)?;
                for m in mboxes {
                    changed |= set.insert(m);
                }
                if let Some(t) = end {
                    changed |= set.insert(t);
                }
            }
        }

        // Owners of middlebox-referenced addresses (LB backends, NAT
        // external addresses) join the slice.
        for &n in &members {
            if !net.topo.node(n).kind.is_middlebox() {
                continue;
            }
            for a in net.model_referenced_addresses(n) {
                if let Some(owner) = net.topo.terminal_for_address(a) {
                    changed |= set.insert(owner);
                }
            }
        }

        // Origin-agnostic middleboxes require a representative per policy
        // equivalence class (done once; re-closure continues afterwards).
        if !added_policy_reps {
            let needs_reps = set.iter().any(|&n| {
                net.topo.node(n).kind.is_middlebox()
                    && !matches!(net.model(n).parallelism, Parallelism::FlowParallel)
            });
            if needs_reps {
                added_policy_reps = true;
                for rep in policy.representatives() {
                    changed |= set.insert(rep);
                }
            }
        }
    }

    Ok(set.into_iter().collect())
}

/// The first middlebox in `slice` whose behaviour the BDD backend cannot
/// express under `scenario`, or `None` when the whole slice is stateless
/// — pure forwarding, ACLs and classification oracles.
///
/// Failed middleboxes never process packets, so a scenario that fails
/// the only stateful box on a path leaves the remaining slice stateless:
/// the classification is per (slice, scenario), not per slice alone.
/// Middleboxes without a model are conservatively stateful (engine
/// validation rejects such networks anyway).
pub fn first_stateful_middlebox(
    net: &Network,
    scenario: &FailureScenario,
    slice: &[NodeId],
) -> Option<NodeId> {
    slice.iter().copied().find(|&n| {
        net.topo.node(n).kind.is_middlebox()
            && !scenario.is_failed(n)
            && net.models.get(&n).is_none_or(|m| vmn_analysis::bdd_support(m).is_some())
    })
}

/// Whether every live middlebox in `slice` is stateless under `scenario`
/// — the eligibility test for routing a query to the BDD dataplane
/// backend instead of the SMT pipeline.
pub fn stateless_slice(net: &Network, scenario: &FailureScenario, slice: &[NodeId]) -> bool {
    first_stateful_middlebox(net, scenario, slice).is_none()
}

/// Jaccard similarity of two sorted, deduplicated node sets:
/// `|a ∩ b| / |a ∪ b|`. Two empty sets are identical (similarity 1.0).
pub fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "slice must be sorted+deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "slice must be sorted+deduped");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Groups per-scenario slices by similarity: greedy agglomerative
/// merging, repeatedly uniting the two clusters whose *unions* are most
/// similar (Jaccard) until no pair reaches `threshold`. Returns the
/// clusters as lists of input indices, each sorted, ordered by smallest
/// member — a partition of `0..slices.len()`.
///
/// The threshold interpolates between the engine's two extremes:
///
/// * `threshold <= 0.0` — everything merges: one cluster, the single
///   union-of-all-slices sweep;
/// * `threshold >= 1.0` — only *identical* slices merge (their Jaccard
///   similarity is exactly 1.0): the per-scenario extreme, except that
///   scenarios with the same slice still share one encoding;
/// * in between — scenarios whose slices overlap enough share an
///   encoder/solver session, wildly divergent ones get their own small
///   one.
///
/// Inputs need not be sorted; each slice is normalised first. Soundness
/// does not depend on the grouping: every cluster's union contains each
/// member scenario's sufficient slice, so any partition yields the same
/// verdicts (the fuzz suite checks exactly this across thresholds).
pub fn cluster_slices(slices: &[Vec<NodeId>], threshold: f64) -> Vec<Vec<usize>> {
    // Cluster state: (member indices, union of member slices).
    let mut clusters: Vec<(Vec<usize>, Vec<NodeId>)> = slices
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut u = s.clone();
            u.sort();
            u.dedup();
            (vec![i], u)
        })
        .collect();
    // Cached pairwise similarities: only the merged cluster's row changes
    // per round, so each merge costs one row of jaccard() recomputations
    // instead of the full O(n²) matrix.
    let n = clusters.len();
    let mut sims: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = jaccard(&clusters[i].1, &clusters[j].1);
            sims[i][j] = s;
            sims[j][i] = s;
        }
    }
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let sim = sims[i][j];
                // Strictly-greater keeps ties on the earliest pair, making
                // the grouping deterministic across platforms.
                if best.is_none_or(|(.., b)| sim > b) {
                    best = Some((i, j, sim));
                }
            }
        }
        match best {
            Some((i, j, sim)) if sim >= threshold => {
                let (members, union) = clusters.swap_remove(j);
                clusters[i].0.extend(members);
                clusters[i].1.extend(union);
                clusters[i].1.sort();
                clusters[i].1.dedup();
                // Mirror the swap_remove in the similarity matrix, then
                // refresh the merged cluster's row/column.
                sims.swap_remove(j);
                for row in &mut sims {
                    row.swap_remove(j);
                }
                for k in 0..clusters.len() {
                    if k != i {
                        let s = jaccard(&clusters[i].1, &clusters[k].1);
                        sims[i][k] = s;
                        sims[k][i] = s;
                    }
                }
            }
            _ => break,
        }
    }
    let mut out: Vec<Vec<usize>> = clusters
        .into_iter()
        .map(|(mut members, _)| {
            members.sort();
            members
        })
        .collect();
    out.sort_by_key(|c| c[0]);
    out
}

/// The slice's member names — the currency of the daemon's cache
/// bookkeeping. Node *ids* are not stable across network epochs once
/// nodes can be added and removed (they are insertion indices); names
/// are, so footprint intersection and cached-verdict keys work on names.
pub fn slice_names(net: &Network, slice: &[NodeId]) -> BTreeSet<String> {
    slice.iter().map(|&n| net.topo.node(n).name.clone()).collect()
}

/// A name-based fingerprint of everything the verdict of one
/// (invariant, scenario) check can depend on, given its verification
/// plan (slice `nodes`, trace bound `k`).
///
/// The engine's verdict is a deterministic function of exactly these
/// inputs, in both backends:
///
/// * the invariant's kind and endpoint/through names,
/// * which slice members the scenario fails (by name),
/// * the trace bound,
/// * each slice member's name, kind, owned addresses and — for
///   middleboxes — its full model configuration,
/// * the delivery behaviour of every live slice terminal, compiled the
///   same way the encoder compiles its per-emitter delivery intervals:
///   for each header equivalence class, where does a packet emitted by
///   this terminal toward that class land (an in-slice terminal, or
///   "outside/drop" — the encoder maps both to its drop sentinel), with
///   adjacent classes of equal outcome merged so that irrelevant class
///   splits elsewhere in the network do not perturb the fingerprint.
///
/// Equal fingerprints across two network epochs therefore imply the
/// same verdict (modulo the 2⁻⁶⁴ hash-collision risk every cache key
/// accepts), which is what lets the `vmn_serve` daemon answer from its
/// verdict cache after a delta instead of re-solving: a routing change
/// three pods over refines the global header classes but leaves this
/// slice's merged intervals — and hence its fingerprint — untouched.
///
/// `classes` must be the header classes of `net`
/// ([`HeaderClasses::from_network`]); they are passed in so one
/// computation serves every (invariant, scenario) pair of an epoch.
pub fn verdict_fingerprint(
    net: &Network,
    classes: &HeaderClasses,
    inv: &Invariant,
    scenario: &FailureScenario,
    nodes: &[NodeId],
    k: usize,
) -> Result<u64, NetError> {
    fn name(net: &Network, n: NodeId) -> &str {
        &net.topo.node(n).name
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();

    // Invariant shape, over names.
    match inv {
        Invariant::NodeIsolation { src, dst } => {
            (0u8, name(net, *src), name(net, *dst)).hash(&mut h);
        }
        Invariant::FlowIsolation { src, dst } => {
            (1u8, name(net, *src), name(net, *dst)).hash(&mut h);
        }
        Invariant::DataIsolation { origin, dst } => {
            (2u8, name(net, *origin), name(net, *dst)).hash(&mut h);
        }
        Invariant::Traversal { dst, through, from } => {
            (3u8, name(net, *dst)).hash(&mut h);
            for &m in through {
                name(net, m).hash(&mut h);
            }
            from.map(|f| name(net, f)).hash(&mut h);
        }
    }

    // Scenario, over names (sorted: BTreeSet order is id order, which is
    // not stable across epochs).
    let mut failed: Vec<&str> = scenario.failed_nodes.iter().map(|&n| name(net, n)).collect();
    failed.sort_unstable();
    failed.hash(&mut h);
    let mut failed_links: Vec<(&str, &str)> = scenario
        .failed_links
        .iter()
        .map(|l| {
            let (a, b) = (name(net, l.a), name(net, l.b));
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    failed_links.sort_unstable();
    failed_links.hash(&mut h);

    k.hash(&mut h);

    // Slice membership: name, kind, addresses, and the middlebox model
    // configurations (the debug form is a complete structural rendering
    // of the model IR).
    let mut members: Vec<NodeId> = nodes.to_vec();
    members.sort_by_key(|&n| name(net, n));
    let in_slice: BTreeSet<NodeId> = members.iter().copied().collect();
    for &n in &members {
        let node = net.topo.node(n);
        node.name.hash(&mut h);
        match &node.kind {
            vmn_net::NodeKind::Host => 0u8.hash(&mut h),
            vmn_net::NodeKind::Switch => 1u8.hash(&mut h),
            vmn_net::NodeKind::Middlebox { mbox_type } => (2u8, mbox_type).hash(&mut h),
        }
        for a in &node.addresses {
            a.0.hash(&mut h);
        }
        if node.kind.is_middlebox() {
            if let Some(model) = net.models.get(&n) {
                format!("{model:?}").hash(&mut h);
            }
        }
    }

    // Delivery behaviour, mirroring the encoder's per-emitter interval
    // compilation (`Encoded::add_scenario`): out-of-slice targets and
    // drops are identical outcomes there (both map to the drop
    // sentinel), and adjacent equal-outcome classes merge.
    let tf = TransferFunction::new(&net.topo, &net.tables, scenario);
    for &f in &members {
        if scenario.is_failed(f) {
            continue;
        }
        name(net, f).hash(&mut h);
        let mut intervals: Vec<(u32, u32, Option<NodeId>)> = Vec::new();
        for ci in 0..classes.num_classes() {
            let rep = classes.representative(ci);
            let result = tf.deliver(f, rep)?.filter(|t| in_slice.contains(t));
            let start = rep.0;
            let end = if ci + 1 < classes.num_classes() {
                classes.representative(ci + 1).0 - 1
            } else {
                u32::MAX
            };
            match intervals.last_mut() {
                Some(last) if last.2 == result && last.1.wrapping_add(1) == start => {
                    last.1 = end;
                }
                _ => intervals.push((start, end, result)),
            }
        }
        for (start, end, result) in intervals {
            let Some(t) = result else { continue };
            (start, end, name(net, t)).hash(&mut h);
        }
    }

    Ok(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Prefix, RoutingConfig, Rule, Topology};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Many host pairs, each pair isolated behind a shared firewall; a
    /// slice for one pair must not include the others.
    fn many_pairs(n: usize) -> (Network, Vec<(NodeId, NodeId)>) {
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
        topo.add_link(fw, sw);
        let mut pairs = Vec::new();
        for i in 0..n {
            let a = topo.add_host(format!("a{i}"), Address(0x0A000000 + i as u32 * 256 + 1));
            let b = topo.add_host(format!("b{i}"), Address(0x0A000000 + i as u32 * 256 + 2));
            topo.add_link(a, sw);
            topo.add_link(b, sw);
            pairs.push((a, b));
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        // Everything goes through the firewall once: packets arriving from
        // any host are steered to fw; fw re-emissions go direct.
        for &(a, b) in &pairs {
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), a, fw).with_priority(10));
            tables.add_rule(sw, Rule::from_neighbor(px("10.0.0.0/8"), b, fw).with_priority(10));
        }
        let mut net = Network::new(topo, tables);
        net.set_model(
            fw,
            models::learning_firewall(
                "stateful-firewall",
                vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))],
            ),
        );
        (net, pairs)
    }

    fn n(i: u32) -> NodeId {
        // NodeId is an index newtype; fabricate ids directly for the
        // metric tests (no topology needed).
        NodeId(i)
    }

    #[test]
    fn jaccard_metric_basics() {
        let a = vec![n(0), n(1), n(2)];
        let b = vec![n(1), n(2), n(3)];
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &b), 0.5);
        assert_eq!(jaccard(&a, &[n(7), n(8)]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0, "two empty slices are identical");
        assert_eq!(jaccard(&a, &[]), 0.0);
    }

    #[test]
    fn identical_slices_always_merge() {
        let s = vec![n(0), n(1), n(2)];
        for threshold in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let clusters = cluster_slices(&[s.clone(), s.clone(), s.clone()], threshold);
            assert_eq!(clusters, vec![vec![0, 1, 2]], "threshold {threshold}");
        }
    }

    #[test]
    fn disjoint_slices_never_merge_above_zero() {
        let slices = vec![vec![n(0), n(1)], vec![n(2), n(3)], vec![n(4), n(5)]];
        for threshold in [0.1, 0.5, 1.0] {
            let clusters = cluster_slices(&slices, threshold);
            assert_eq!(clusters, vec![vec![0], vec![1], vec![2]], "threshold {threshold}");
        }
    }

    #[test]
    fn threshold_zero_degenerates_to_one_union() {
        // Even fully disjoint slices collapse into a single cluster: the
        // PR-2 union-of-all-slices sweep.
        let slices = vec![vec![n(0)], vec![n(1)], vec![n(2)], vec![n(3)]];
        let clusters = cluster_slices(&slices, 0.0);
        assert_eq!(clusters, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn threshold_one_degenerates_to_per_scenario() {
        // Overlapping-but-distinct slices all stay separate; only the
        // identical pair (0, 3) shares a cluster.
        let slices = vec![
            vec![n(0), n(1), n(2)],
            vec![n(0), n(1), n(3)],
            vec![n(0), n(1), n(2), n(4)],
            vec![n(0), n(1), n(2)],
        ];
        let clusters = cluster_slices(&slices, 1.0);
        assert_eq!(clusters, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn intermediate_threshold_groups_by_overlap() {
        // Two "families" sharing only the invariant endpoints {0, 1}:
        // within a family overlap is 3/5 = 0.6, across families 2/6 ≈
        // 0.33 — a 0.4 threshold splits exactly along families.
        let slices = vec![
            vec![n(0), n(1), n(2), n(3)],
            vec![n(0), n(1), n(2), n(4)],
            vec![n(0), n(1), n(5), n(6)],
            vec![n(0), n(1), n(5), n(7)],
        ];
        let clusters = cluster_slices(&slices, 0.4);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
        // Unsorted input is normalised, not misgrouped.
        let shuffled = vec![
            vec![n(3), n(0), n(2), n(1)],
            vec![n(4), n(2), n(1), n(0)],
            vec![n(6), n(5), n(1), n(0)],
            vec![n(7), n(0), n(5), n(1)],
        ];
        assert_eq!(cluster_slices(&shuffled, 0.4), clusters);
    }

    #[test]
    fn clusters_partition_the_input() {
        let slices = vec![
            vec![n(0), n(1)],
            vec![n(1), n(2)],
            vec![n(9)],
            vec![n(0), n(1)],
            vec![n(3), n(4), n(5)],
        ];
        for threshold in [0.0, 0.3, 0.7, 1.0] {
            let clusters = cluster_slices(&slices, threshold);
            let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
            seen.sort();
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "threshold {threshold} must partition");
        }
    }

    #[test]
    fn slice_is_independent_of_network_size() {
        for n in [2usize, 8, 32] {
            let (net, pairs) = many_pairs(n);
            let pc = PolicyClasses::from_groups(vec![]);
            let inv = Invariant::NodeIsolation { src: pairs[0].0, dst: pairs[0].1 };
            let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
            // Slice = the two endpoints + the firewall, regardless of n.
            assert_eq!(slice.len(), 3, "n={n}: slice {slice:?}");
        }
    }

    #[test]
    fn slice_contains_endpoints_and_path_mboxes() {
        let (net, pairs) = many_pairs(4);
        let pc = PolicyClasses::from_groups(vec![]);
        let inv = Invariant::NodeIsolation { src: pairs[2].0, dst: pairs[2].1 };
        let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
        assert!(slice.contains(&pairs[2].0));
        assert!(slice.contains(&pairs[2].1));
        let fw = net.topo.by_name("fw").unwrap();
        assert!(slice.contains(&fw));
    }

    #[test]
    fn stateful_boxes_classify_the_slice_stateful() {
        // Firewalls (state-reading) and load balancers (rewriting) make a
        // slice ineligible for the BDD backend; pure forwarding + ACL
        // boxes keep it eligible.
        let (net, pairs) = many_pairs(2);
        let fw = net.topo.by_name("fw").unwrap();
        let slice = vec![pairs[0].0, pairs[0].1, fw];
        let none = FailureScenario::none();
        assert_eq!(first_stateful_middlebox(&net, &none, &slice), Some(fw));
        assert!(!stateless_slice(&net, &none, &slice));

        let mut lb_net = net.clone();
        lb_net.set_model(fw, models::load_balancer("lb", addr("10.0.0.9"), vec![addr("10.0.0.1")]));
        assert_eq!(first_stateful_middlebox(&lb_net, &none, &slice), Some(fw));

        let mut acl_net = net.clone();
        acl_net.set_model(
            fw,
            models::acl_firewall("aclfw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
        );
        assert!(stateless_slice(&acl_net, &none, &slice));

        let mut idps_net = net;
        idps_net.set_model(fw, models::idps("idps"));
        assert!(stateless_slice(&idps_net, &none, &slice), "oracle boxes are stateless");
    }

    #[test]
    fn hosts_only_slices_are_stateless() {
        let (net, pairs) = many_pairs(2);
        let slice = vec![pairs[0].0, pairs[0].1];
        assert!(stateless_slice(&net, &FailureScenario::none(), &slice));
    }

    #[test]
    fn failed_stateful_boxes_do_not_count() {
        // Scenario-dependence: a failed firewall never processes packets,
        // so the slice is stateless exactly under the scenario that
        // fails it.
        let (net, pairs) = many_pairs(2);
        let fw = net.topo.by_name("fw").unwrap();
        let slice = vec![pairs[0].0, pairs[0].1, fw];
        assert!(!stateless_slice(&net, &FailureScenario::none(), &slice));
        assert!(stateless_slice(&net, &FailureScenario::nodes([fw]), &slice));
    }

    #[test]
    fn origin_agnostic_boxes_pull_in_policy_reps() {
        // A cache between clients and a server: slice must include one
        // representative per policy class.
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let server = topo.add_host("server", addr("10.1.0.1"));
        let c1 = topo.add_host("c1", addr("10.2.0.1"));
        let c2 = topo.add_host("c2", addr("10.2.0.2"));
        let other = topo.add_host("other", addr("10.3.0.1"));
        let cache = topo.add_middlebox("cache", "content-cache", vec![]);
        for n in [server, c1, c2, other, cache] {
            topo.add_link(n, sw);
        }
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        for h in [c1, c2, other] {
            tables.add_rule(sw, Rule::from_neighbor(px("10.1.0.0/16"), h, cache).with_priority(10));
        }
        tables
            .add_rule(sw, Rule::from_neighbor(px("10.2.0.0/15"), server, cache).with_priority(10));
        let mut net = Network::new(topo, tables);
        net.set_model(cache, models::content_cache("content-cache", [px("10.1.0.0/16")], vec![]));

        let pc = PolicyClasses::from_groups(vec![vec![c1, c2], vec![other], vec![server]]);
        let inv = Invariant::DataIsolation { origin: server, dst: other };
        let slice = compute_slice(&net, &FailureScenario::none(), &inv, &pc).unwrap();
        // other + server (endpoints), cache (on path), plus a rep for the
        // {c1, c2} class (c1).
        assert!(slice.contains(&cache));
        assert!(slice.contains(&c1), "needs a representative of the client class: {slice:?}");
        assert!(!slice.contains(&c2), "one representative suffices: {slice:?}");
    }
}
