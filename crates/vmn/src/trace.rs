//! Counterexample traces: extraction from SMT models and replay on the
//! concrete simulator.

use crate::encoder::Encoded;
use crate::network::Network;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use vmn_mbox::exec::ScriptedChooser;
use vmn_mbox::Action;
use vmn_net::{Address, FailureScenario, Header, NetError, NodeId};
use vmn_sim::{Observation, SimOp, Simulator};

/// What happened at one trace step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepKind {
    Idle,
    HostSend,
    MboxProcess,
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    pub kind: StepKind,
    pub actor: Option<NodeId>,
    /// The packet emitted at this step (send or forwarded/produced by a
    /// middlebox), if any.
    pub packet: Option<Header>,
    /// Terminal the emitted packet was delivered to (`None` = dropped).
    pub delivered_to: Option<NodeId>,
    /// For processing steps: the index of the step whose packet was
    /// consumed.
    pub target: Option<usize>,
    /// For processing steps: the model rule that fired.
    pub fired_rule: Option<usize>,
    /// Load-balancer style choice made at this step.
    pub choice: usize,
    /// Fresh port / tag drawn at this step (meaningful only if the fired
    /// rule uses them).
    pub fresh_port: u16,
    pub fresh_tag: u64,
    /// Oracle valuations consulted at this step.
    pub oracle_values: HashMap<String, bool>,
}

/// A violation witness: a schedule of events ending in a forbidden
/// reception.
#[derive(Clone, Debug)]
pub struct Trace {
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Reads a trace out of a satisfiable [`Encoded`] instance.
    pub fn extract(enc: &mut Encoded) -> Trace {
        let mut steps = Vec::with_capacity(enc.steps.len());
        let step_vars = enc.steps.clone();
        for (t, sv) in step_vars.iter().enumerate() {
            let kind = match enc.ctx.eval_bv(sv.kind) {
                1 => StepKind::HostSend,
                2 => StepKind::MboxProcess,
                _ => StepKind::Idle,
            };
            let actor_id = enc.ctx.eval_bv(sv.actor) as usize;
            let actor =
                if kind != StepKind::Idle { enc.terminals.get(actor_id).copied() } else { None };
            let present = enc.ctx.eval_bool(sv.present);
            let packet = if present {
                Some(Header {
                    src: Address(enc.ctx.eval_bv(sv.out.src) as u32),
                    dst: Address(enc.ctx.eval_bv(sv.out.dst) as u32),
                    src_port: enc.ctx.eval_bv(sv.out.sport) as u16,
                    dst_port: enc.ctx.eval_bv(sv.out.dport) as u16,
                    proto: vmn_net::Protocol::Tcp,
                    origin: Address(enc.ctx.eval_bv(sv.out.origin) as u32),
                    tag: enc.ctx.eval_bv(sv.out.tag),
                })
            } else {
                None
            };
            let delivered_id = enc.ctx.eval_bv(sv.delivered);
            let delivered_to = if present && delivered_id != enc.drop_id {
                enc.terminals.get(delivered_id as usize).copied()
            } else {
                None
            };
            let target = if kind == StepKind::MboxProcess {
                Some(enc.ctx.eval_bv(sv.target) as usize)
            } else {
                None
            };
            let fired_rule = match (&kind, actor) {
                (StepKind::MboxProcess, Some(m)) => {
                    let mut fr = None;
                    for r in 0.. {
                        match enc.fired.get(&(t, m, r)) {
                            Some(&term) => {
                                if enc.ctx.eval_bool(term) {
                                    fr = Some(r);
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                    fr
                }
                _ => None,
            };
            let oracle_names: Vec<String> =
                enc.oracles.keys().filter(|(_, ot)| *ot == t).map(|(n, _)| n.clone()).collect();
            let oracle_values = oracle_names
                .into_iter()
                .map(|name| {
                    let var = enc.oracles[&(name.clone(), t)];
                    let v = enc.ctx.eval_bool(var);
                    (name, v)
                })
                .collect();
            steps.push(TraceStep {
                kind,
                actor,
                packet,
                delivered_to,
                target,
                fired_rule,
                choice: enc.ctx.eval_bv(sv.choice) as usize,
                fresh_port: enc.ctx.eval_bv(sv.fresh_port) as u16,
                fresh_tag: enc.ctx.eval_bv(sv.fresh_tag),
                oracle_values,
            });
        }
        Trace { steps }
    }

    /// The schedule of simulator operations this trace corresponds to
    /// (idle steps are skipped).
    pub fn schedule(&self) -> Vec<SimOp> {
        self.steps
            .iter()
            .filter_map(|s| match (&s.kind, s.actor) {
                (StepKind::HostSend, Some(h)) => {
                    s.packet.map(|p| SimOp::Send { host: h, header: p })
                }
                (StepKind::MboxProcess, Some(m)) => Some(SimOp::Process { mbox: m }),
                _ => None,
            })
            .collect()
    }

    /// Replays the trace on the concrete simulator and returns every host
    /// reception observed. Nondeterministic choices, fresh values and
    /// oracle answers are scripted from the trace, so a correct encoding
    /// reproduces the violating reception exactly.
    pub fn replay(
        &self,
        net: &Network,
        scenario: &FailureScenario,
    ) -> Result<Vec<Observation>, NetError> {
        // Collect scripted choices in processing order.
        let mut picks = Vec::new();
        let mut ports = Vec::new();
        let mut tags = Vec::new();
        for s in &self.steps {
            if s.kind != StepKind::MboxProcess {
                continue;
            }
            let (Some(m), Some(r)) = (s.actor, s.fired_rule) else {
                continue;
            };
            let model = net.model(m);
            for action in &model.rules[r].actions {
                match action {
                    Action::RewriteDstOneOf(_) => picks.push(s.choice),
                    Action::RewriteSrcPortFresh => ports.push(s.fresh_port),
                    Action::HavocTag => tags.push(s.fresh_tag),
                    _ => {}
                }
            }
        }
        let chooser = ScriptedChooser::new(picks, ports, tags);

        // Oracle answers are per (step, oracle); the simulator consults the
        // oracle during `Process` calls, so expose the current step's
        // valuation through a shared cell updated as we drive the schedule.
        let current: Rc<RefCell<HashMap<String, bool>>> = Rc::new(RefCell::new(HashMap::new()));
        let current_for_oracle = Rc::clone(&current);
        let oracle = move |name: &str, _h: &Header| -> bool {
            current_for_oracle.borrow().get(name).copied().unwrap_or(false)
        };

        let models: HashMap<NodeId, &vmn_mbox::MboxModel> =
            net.topo.middleboxes().map(|m| (m, net.model(m))).collect();
        let mut sim = Simulator::new(&net.topo, &net.tables, scenario.clone(), models)
            .with_chooser(chooser)
            .with_oracle(oracle);

        for s in &self.steps {
            match (&s.kind, s.actor) {
                (StepKind::HostSend, Some(h)) => {
                    if let Some(p) = s.packet {
                        sim.exec(&SimOp::Send { host: h, header: p })?;
                    }
                }
                (StepKind::MboxProcess, Some(m)) => {
                    *current.borrow_mut() = s.oracle_values.clone();
                    sim.exec(&SimOp::Process { mbox: m })?;
                }
                _ => {}
            }
        }
        Ok(sim.host_receptions().copied().collect())
    }

    /// Human-readable rendering.
    pub fn render(&self, net: &Network) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let name = |n: NodeId| net.topo.node(n).name.clone();
        for (t, s) in self.steps.iter().enumerate() {
            match (&s.kind, s.actor) {
                (StepKind::Idle, _) => {}
                (StepKind::HostSend, Some(h)) => {
                    let _ = writeln!(
                        out,
                        "  [{t}] {} sends {}{}",
                        name(h),
                        s.packet.map(|p| p.to_string()).unwrap_or_default(),
                        s.delivered_to
                            .map(|d| format!(" -> delivered to {}", name(d)))
                            .unwrap_or_else(|| " -> dropped".into()),
                    );
                }
                (StepKind::MboxProcess, Some(m)) => {
                    let _ = writeln!(
                        out,
                        "  [{t}] {} processes packet from step {} (rule {}){}",
                        name(m),
                        s.target.unwrap_or_default(),
                        s.fired_rule.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                        match (s.packet, s.delivered_to) {
                            (Some(p), Some(d)) =>
                                format!(": emits {} -> delivered to {}", p, name(d)),
                            (Some(p), None) => format!(": emits {p} -> dropped"),
                            (None, _) => ": drops".to_string(),
                        },
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// All (receiver, packet) receptions at hosts implied by the trace.
    pub fn host_receptions(&self, net: &Network) -> Vec<(NodeId, Header)> {
        self.steps
            .iter()
            .filter_map(|s| match (s.delivered_to, s.packet) {
                (Some(d), Some(p)) if net.topo.node(d).kind.is_host() => Some((d, p)),
                _ => None,
            })
            .collect()
    }
}
