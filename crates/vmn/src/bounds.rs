//! Trace-bound computation for the bounded-trace encoding.
//!
//! The paper hands Z3 formulas quantified over unbounded time and relies
//! on its heuristics; we instead unroll a bounded trace and must justify
//! the bound. For the invariant classes of §3.3 over slices of
//! flow-parallel / origin-agnostic middleboxes, a violation — if any
//! exists — has a *small-model* witness:
//!
//! * each witness packet crosses a pipeline of at most `D` middleboxes,
//!   costing one send step plus `D` processing steps;
//! * stateful behaviour along the path (firewall hole-punching, cache
//!   warm-up, NAT mappings) is primed by at most `W − 1` earlier packets,
//!   where `W` is [`Invariant::witness_packets`];
//! * no other event can enable a reception that these cannot (middlebox
//!   state only grows via processed packets, and — for flow-parallel
//!   boxes — only the witness flows' state is ever consulted).
//!
//! Hence `K = W · (D + 1) + slack` steps suffice; `slack` (default 2)
//! absorbs model-specific extras such as a load-balancer hop inserted by
//! rewriting. The bound is per (invariant, scenario, node set) and is
//! recomputed for whole-network runs, where paths can be longer.

use crate::invariant::Invariant;
use crate::network::Network;
use vmn_net::{FailureScenario, NodeId, TransferFunction};

/// Default slack steps added to every bound.
pub const DEFAULT_SLACK: usize = 2;

/// Longest middlebox pipeline between any pair of the given hosts under
/// `scenario` (measured on the static datapath).
pub fn max_pipeline_depth(net: &Network, scenario: &FailureScenario, hosts: &[NodeId]) -> usize {
    let tf = TransferFunction::new(&net.topo, &net.tables, scenario);
    let mut depth = 0;
    for &src in hosts {
        if scenario.is_failed(src) {
            continue;
        }
        for &dst in hosts {
            if src == dst {
                continue;
            }
            for &addr in &net.topo.node(dst).addresses {
                // A static forwarding loop would be rejected earlier, when
                // the transfer function is first exercised; here we take
                // a conservative default.
                match tf.terminal_path(src, addr) {
                    Ok((mboxes, _)) => depth = depth.max(mboxes.len()),
                    Err(_) => depth = depth.max(4),
                }
            }
        }
    }
    depth
}

/// Computes the trace bound for verifying `inv` over the hosts of a node
/// set (slice or whole network).
pub fn trace_bound(
    net: &Network,
    scenario: &FailureScenario,
    inv: &Invariant,
    nodes: &[NodeId],
    slack: usize,
) -> usize {
    let hosts: Vec<NodeId> =
        nodes.iter().copied().filter(|&n| net.topo.node(n).kind.is_host()).collect();
    let depth = max_pipeline_depth(net, scenario, &hosts);
    let w = inv.witness_packets();
    w * (depth + 1) + slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmn_mbox::models;
    use vmn_net::{Address, Prefix, RoutingConfig, Rule, Topology};

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn two_host_net(with_fw: bool) -> (Network, NodeId, NodeId) {
        let mut topo = Topology::new();
        let h1 = topo.add_host("h1", addr("10.0.1.1"));
        let h2 = topo.add_host("h2", addr("10.0.2.1"));
        let s1 = topo.add_switch("s1");
        topo.add_link(h1, s1);
        topo.add_link(h2, s1);
        let fw = if with_fw {
            let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
            topo.add_link(fw, s1);
            Some(fw)
        } else {
            None
        };
        let mut rc = RoutingConfig::new();
        rc.host_routes(&topo);
        let mut tables = rc.build(&topo, &FailureScenario::none());
        if let Some(fw) = fw {
            tables.add_rule(s1, Rule::from_neighbor(px("0.0.0.0/0"), h1, fw).with_priority(10));
        }
        let mut net = Network::new(topo, tables);
        if let Some(fw) = fw {
            net.set_model(fw, models::learning_firewall("stateful-firewall", vec![]));
        }
        (net, h1, h2)
    }

    #[test]
    fn depth_counts_middleboxes() {
        let (net, h1, h2) = two_host_net(true);
        let none = FailureScenario::none();
        assert_eq!(max_pipeline_depth(&net, &none, &[h1, h2]), 1);
        let (net2, h1b, h2b) = two_host_net(false);
        assert_eq!(max_pipeline_depth(&net2, &none, &[h1b, h2b]), 0);
    }

    #[test]
    fn bound_scales_with_witness_packets() {
        let (net, h1, h2) = two_host_net(true);
        let none = FailureScenario::none();
        let nodes = vec![h1, h2];
        let simple = Invariant::NodeIsolation { src: h1, dst: h2 };
        let flow = Invariant::FlowIsolation { src: h1, dst: h2 };
        let b1 = trace_bound(&net, &none, &simple, &nodes, DEFAULT_SLACK);
        let b2 = trace_bound(&net, &none, &flow, &nodes, DEFAULT_SLACK);
        assert_eq!(b1, 2 + DEFAULT_SLACK);
        assert_eq!(b2, 2 * 2 + DEFAULT_SLACK);
        assert!(b2 > b1);
    }
}
