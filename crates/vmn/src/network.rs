//! The verification subject: a topology, its forwarding configuration,
//! middlebox models, and the failure scenarios to verify under.

use std::collections::HashMap;
use vmn_mbox::MboxModel;
use vmn_net::{Address, FailureScenario, ForwardingTables, NodeId, Topology};

/// Everything VMN needs to verify a network.
///
/// Forwarding tables are shared across failure scenarios: backup rules
/// (lower priorities) plus liveness-aware lookup implement the paper's
/// "mapping from failure conditions to transfer functions".
#[derive(Clone)]
pub struct Network {
    pub topo: Topology,
    pub tables: ForwardingTables,
    /// Model for every middlebox instance.
    pub models: HashMap<NodeId, MboxModel>,
    /// Failure scenarios to verify under. The no-failure scenario is
    /// always checked; scenarios listed here are checked in addition.
    pub scenarios: Vec<FailureScenario>,
}

impl Network {
    pub fn new(topo: Topology, tables: ForwardingTables) -> Network {
        Network { topo, tables, models: HashMap::new(), scenarios: Vec::new() }
    }

    /// Attaches a model to a middlebox instance.
    pub fn set_model(&mut self, mbox: NodeId, model: MboxModel) {
        assert!(
            self.topo.node(mbox).kind.is_middlebox(),
            "{:?} is not a middlebox",
            self.topo.node(mbox).name
        );
        model.validate().expect("invalid middlebox model");
        self.models.insert(mbox, model);
    }

    pub fn model(&self, mbox: NodeId) -> &MboxModel {
        self.models
            .get(&mbox)
            .unwrap_or_else(|| panic!("no model attached to {:?}", self.topo.node(mbox).name))
    }

    /// Adds a failure scenario to verify under.
    pub fn add_scenario(&mut self, s: FailureScenario) {
        self.scenarios.push(s);
    }

    /// All scenarios to check: no-failure first, then the configured ones.
    pub fn all_scenarios(&self) -> Vec<FailureScenario> {
        let mut out = vec![FailureScenario::none()];
        out.extend(self.scenarios.iter().cloned());
        out
    }

    /// Checks that every middlebox has a model and that no model's
    /// declared annotations overclaim what static analysis can infer
    /// from its rules — slicing trusts the declarations, so an
    /// overclaimed `Parallelism` would silently produce unsound slices.
    pub fn validate(&self) -> Result<(), String> {
        for m in self.topo.middleboxes() {
            let Some(model) = self.models.get(&m) else {
                return Err(format!("middlebox {:?} has no model", self.topo.node(m).name));
            };
            if let Some(d) = vmn_analysis::annotation_error(model) {
                return Err(format!("middlebox {:?}: {d}", self.topo.node(m).name));
            }
        }
        Ok(())
    }

    /// The primary address of a host (used in invariant encodings).
    pub fn host_address(&self, h: NodeId) -> Address {
        *self
            .topo
            .node(h)
            .addresses
            .first()
            .unwrap_or_else(|| panic!("host {:?} has no address", self.topo.node(h).name))
    }

    /// Addresses a model's actions reference (rewrite targets); slice
    /// discovery must pull the owners of these addresses into the slice.
    pub fn model_referenced_addresses(&self, mbox: NodeId) -> Vec<Address> {
        let mut out = Vec::new();
        for rule in &self.model(mbox).rules {
            for action in &rule.actions {
                match action {
                    vmn_mbox::Action::RewriteSrc(a) | vmn_mbox::Action::RewriteDst(a) => {
                        out.push(*a)
                    }
                    vmn_mbox::Action::RewriteDstOneOf(addrs) => out.extend(addrs.iter().copied()),
                    _ => {}
                }
            }
        }
        out.extend(self.topo.node(mbox).addresses.iter().copied());
        out.sort();
        out.dedup();
        out
    }
}
