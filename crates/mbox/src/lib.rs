//! Middlebox models: the loop-free, event-driven modelling language of
//! VMN (§3.4) and the standard model library.
//!
//! A middlebox model describes, per received packet, whether and how the
//! packet is forwarded, how mutable state evolves, and what the box does
//! under failure. Models are deliberately *abstract*: packet
//! classification beyond header fields is delegated to named
//! **classification oracles** (`malicious?`, `skype?`, …) exactly as in
//! the paper — the verifier quantifies over all oracle behaviours.
//!
//! The same model drives two interpreters:
//!
//! * the **symbolic encoder** in the `vmn` crate compiles models into
//!   history-predicate axioms (the paper's `established(flow(p)) ⟺ ♦(…)`
//!   style), and
//! * the **concrete interpreter** in [`exec`] executes them operationally
//!   for the discrete-event simulator and counterexample replay.
//!
//! State is *history-defined*: a state set contains key `k` after the box
//! processed some earlier packet whose matched rule performed an
//! [`Action::Insert`] and whose key expression evaluated to `k`. This is
//! precisely how the paper axiomatises middlebox state, and it is what
//! makes flow-parallel/origin-agnostic analysis (§4.1) syntactically
//! checkable: a model is flow-parallel when every state access is keyed by
//! [`KeyExpr::Flow`].
//!
//! # Example: the paper's Listing 1 (learning firewall)
//!
//! ```
//! use vmn_mbox::{MboxModel, Guard, Action, KeyExpr, FailMode, Parallelism};
//! use vmn_net::Prefix;
//!
//! let acl: Vec<(Prefix, Prefix)> = vec![
//!     ("10.0.0.0/24".parse().unwrap(), "10.0.1.0/24".parse().unwrap()),
//! ];
//! let fw = vmn_mbox::models::learning_firewall("fw", acl);
//! assert_eq!(fw.fail_mode, FailMode::Closed);
//! assert_eq!(fw.parallelism, Parallelism::FlowParallel);
//! ```

#![forbid(unsafe_code)]

pub mod exec;
pub mod models;

use std::fmt;
use vmn_net::{Address, Prefix, Protocol};

/// Failure behaviour of a middlebox (the paper's `@FailClosed` /
/// fail-open annotation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailMode {
    /// Packets are dropped while the box is failed.
    Closed,
    /// Packets pass through unmodified while the box is failed.
    Open,
}

/// How middlebox state is partitioned — the property slicing exploits
/// (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Parallelism {
    /// State is partitioned by flow and only the packet's own flow's state
    /// is read or written (e.g. stateful firewalls, NATs).
    FlowParallel,
    /// State is shared across flows but behaviour does not depend on
    /// *which* host installed it (e.g. content caches).
    OriginAgnostic,
    /// No structure; slicing cannot shrink networks containing this box.
    General,
}

/// How a state key is computed from the packet being processed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum KeyExpr {
    /// Direction-normalised 5-tuple ([`vmn_net::Header::flow`]).
    Flow,
    /// Source address.
    SrcAddr,
    /// Destination address.
    DstAddr,
    /// The packet's data origin (`origin(p)` in the paper).
    Origin,
    /// The (src, dst) address pair.
    SrcDst,
}

/// A declared state set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateDecl {
    pub name: String,
    /// The key expression used at insertion time.
    pub key: KeyExpr,
}

/// A declared classification oracle (abstract packet class).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleDecl {
    /// Name, conventionally ending in `?` (e.g. `malicious?`).
    pub name: String,
}

/// Predicate over the packet being processed, middlebox state and oracles.
#[derive(Clone, Debug, PartialEq)]
pub enum Guard {
    True,
    Not(Box<Guard>),
    And(Vec<Guard>),
    Or(Vec<Guard>),
    SrcIn(Prefix),
    DstIn(Prefix),
    SrcIs(Address),
    DstIs(Address),
    SrcPortIs(u16),
    DstPortIs(u16),
    ProtoIs(Protocol),
    OriginIn(Prefix),
    OriginIs(Address),
    /// The (src, dst) pair is allowed by the named ACL in the model's
    /// configuration (the paper's `acl.contains((p.src, p.dest))`).
    AclMatch(String),
    /// The named state set contains the key computed by `key` from the
    /// *current* (possibly rewritten) packet.
    StateContains {
        state: String,
        key: KeyExpr,
    },
    /// The named classification oracle says yes for this packet.
    Oracle(String),
}

impl Guard {
    pub fn and(gs: impl IntoIterator<Item = Guard>) -> Guard {
        Guard::And(gs.into_iter().collect())
    }

    pub fn or(gs: impl IntoIterator<Item = Guard>) -> Guard {
        Guard::Or(gs.into_iter().collect())
    }

    /// Guard negation. An associated constructor (like [`Guard::and`] /
    /// [`Guard::or`]), not a `std::ops::Not` impl: it consumes a `Guard`
    /// argument rather than `self`, matching how model builders write
    /// `Guard::not(...)` prefix-style in guard expressions.
    #[allow(clippy::should_implement_trait)]
    pub fn not(g: Guard) -> Guard {
        Guard::Not(Box::new(g))
    }

    /// State sets read by this guard.
    fn states_read<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Guard::Not(g) => g.states_read(out),
            Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| g.states_read(out)),
            Guard::StateContains { state, .. } => out.push(state),
            _ => {}
        }
    }

    /// Key expressions used by state reads in this guard.
    fn state_keys(&self, out: &mut Vec<KeyExpr>) {
        match self {
            Guard::Not(g) => g.state_keys(out),
            Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| g.state_keys(out)),
            Guard::StateContains { key, .. } => out.push(*key),
            _ => {}
        }
    }

    /// Oracles referenced by this guard.
    fn oracles<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Guard::Not(g) => g.oracles(out),
            Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| g.oracles(out)),
            Guard::Oracle(name) => out.push(name),
            _ => {}
        }
    }
}

/// Effect of a matched rule, applied in order.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Emit the current packet toward its (possibly rewritten) destination.
    Forward,
    /// Emit nothing.
    Drop,
    /// Record the current packet in the named state set (key per the
    /// state's declaration; the entry also remembers the packet's
    /// *original* pre-rewrite header, which reverse-direction actions can
    /// consult).
    Insert(String),
    /// Rewrite the source address.
    RewriteSrc(Address),
    /// Rewrite the destination address.
    RewriteDst(Address),
    /// Rewrite the destination to one of the given addresses,
    /// nondeterministically (load balancing; the verifier explores every
    /// choice, the simulator picks).
    RewriteDstOneOf(Vec<Address>),
    /// Rewrite the source port to a fresh, previously-unused value (NAT
    /// ephemeral ports; symbolic in the verifier).
    RewriteSrcPortFresh,
    /// Replace dst/dst-port with the original src/src-port remembered by
    /// the matching entry of the named state set (NAT reverse direction).
    RestoreDstFromState(String),
    /// Turn the packet into a response served from the named state set:
    /// src/dst and ports are swapped, and src, origin and payload tag are
    /// taken from the remembered original (content-cache hits).
    RespondFromState(String),
    /// Replace the payload tag with a fresh value — the paper's model of
    /// complex modifications such as encryption or compression.
    HavocTag,
}

/// One `when guard => actions` arm; arms are evaluated in order and the
/// first whose guard matches fires (the paper's event-driven `when`
/// blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleArm {
    pub guard: Guard,
    pub actions: Vec<Action>,
}

/// A complete middlebox model.
#[derive(Clone, Debug)]
pub struct MboxModel {
    /// Model/type name; topology nodes reference models by this tag.
    pub type_name: String,
    pub fail_mode: FailMode,
    pub parallelism: Parallelism,
    pub states: Vec<StateDecl>,
    pub oracles: Vec<OracleDecl>,
    /// Groups of oracles that are mutually exclusive (§3.4's output
    /// constraints, e.g. a packet is at most one of Skype/Jabber).
    pub exclusive_oracles: Vec<Vec<String>>,
    /// Named ACLs used by [`Guard::AclMatch`]: allowed (src, dst) prefix
    /// pairs.
    pub acls: Vec<(String, Vec<(Prefix, Prefix)>)>,
    pub rules: Vec<RuleArm>,
}

impl MboxModel {
    pub fn new(type_name: impl Into<String>) -> MboxModel {
        MboxModel {
            type_name: type_name.into(),
            fail_mode: FailMode::Closed,
            parallelism: Parallelism::FlowParallel,
            states: Vec::new(),
            oracles: Vec::new(),
            exclusive_oracles: Vec::new(),
            acls: Vec::new(),
            rules: Vec::new(),
        }
    }

    pub fn fail_mode(mut self, m: FailMode) -> MboxModel {
        self.fail_mode = m;
        self
    }

    pub fn parallelism(mut self, p: Parallelism) -> MboxModel {
        self.parallelism = p;
        self
    }

    pub fn state(mut self, name: impl Into<String>, key: KeyExpr) -> MboxModel {
        self.states.push(StateDecl { name: name.into(), key });
        self
    }

    pub fn oracle(mut self, name: impl Into<String>) -> MboxModel {
        self.oracles.push(OracleDecl { name: name.into() });
        self
    }

    pub fn exclusive(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> MboxModel {
        self.exclusive_oracles.push(names.into_iter().map(Into::into).collect());
        self
    }

    pub fn acl(mut self, name: impl Into<String>, pairs: Vec<(Prefix, Prefix)>) -> MboxModel {
        self.acls.push((name.into(), pairs));
        self
    }

    pub fn rule(mut self, guard: Guard, actions: Vec<Action>) -> MboxModel {
        self.rules.push(RuleArm { guard, actions });
        self
    }

    pub fn acl_pairs(&self, name: &str) -> Option<&[(Prefix, Prefix)]> {
        self.acls.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    pub fn state_decl(&self, name: &str) -> Option<&StateDecl> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Whether every state access in the model is keyed by flow — the
    /// syntactic check behind the flow-parallel classification.
    pub fn is_flow_keyed(&self) -> bool {
        let mut keys = Vec::new();
        for r in &self.rules {
            r.guard.state_keys(&mut keys);
        }
        keys.extend(self.states.iter().map(|s| s.key));
        keys.iter().all(|k| *k == KeyExpr::Flow)
    }

    /// Validates internal references (state names, ACL names, oracles).
    pub fn validate(&self) -> Result<(), ModelError> {
        let state_names: Vec<&str> = self.states.iter().map(|s| s.name.as_str()).collect();
        let oracle_names: Vec<&str> = self.oracles.iter().map(|o| o.name.as_str()).collect();
        for (i, rule) in self.rules.iter().enumerate() {
            let mut reads = Vec::new();
            rule.guard.states_read(&mut reads);
            for s in reads {
                if !state_names.contains(&s) {
                    return Err(ModelError::UnknownState { rule: i, name: s.to_string() });
                }
            }
            let mut oracles = Vec::new();
            rule.guard.oracles(&mut oracles);
            for o in oracles {
                if !oracle_names.contains(&o) {
                    return Err(ModelError::UnknownOracle { rule: i, name: o.to_string() });
                }
            }
            let mut acl_refs = Vec::new();
            collect_acl_refs(&rule.guard, &mut acl_refs);
            for a in acl_refs {
                if self.acl_pairs(a).is_none() {
                    return Err(ModelError::UnknownAcl { rule: i, name: a.to_string() });
                }
            }
            for action in &rule.actions {
                let touched = match action {
                    Action::Insert(s)
                    | Action::RestoreDstFromState(s)
                    | Action::RespondFromState(s) => Some(s),
                    _ => None,
                };
                if let Some(s) = touched {
                    if !state_names.contains(&s.as_str()) {
                        return Err(ModelError::UnknownState { rule: i, name: s.clone() });
                    }
                }
            }
            let emits = rule
                .actions
                .iter()
                .filter(|a| {
                    matches!(a, Action::Forward | Action::Drop | Action::RespondFromState(_))
                })
                .count();
            if emits != 1 {
                return Err(ModelError::BadEmitCount { rule: i, emits });
            }
        }
        for group in &self.exclusive_oracles {
            for name in group {
                if !oracle_names.contains(&name.as_str()) {
                    return Err(ModelError::UnknownOracle { rule: usize::MAX, name: name.clone() });
                }
            }
        }
        Ok(())
    }
}

fn collect_acl_refs<'a>(g: &'a Guard, out: &mut Vec<&'a str>) {
    match g {
        Guard::Not(inner) => collect_acl_refs(inner, out),
        Guard::And(gs) | Guard::Or(gs) => gs.iter().for_each(|g| collect_acl_refs(g, out)),
        Guard::AclMatch(name) => out.push(name),
        _ => {}
    }
}

/// Validation errors for middlebox models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    UnknownState {
        rule: usize,
        name: String,
    },
    UnknownOracle {
        rule: usize,
        name: String,
    },
    UnknownAcl {
        rule: usize,
        name: String,
    },
    /// Every rule must emit exactly once (Forward, Drop, or Respond).
    BadEmitCount {
        rule: usize,
        emits: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownState { rule, name } => {
                write!(f, "rule {rule} references unknown state {name:?}")
            }
            ModelError::UnknownOracle { rule, name } => {
                write!(f, "rule {rule} references unknown oracle {name:?}")
            }
            ModelError::UnknownAcl { rule, name } => {
                write!(f, "rule {rule} references unknown ACL {name:?}")
            }
            ModelError::BadEmitCount { rule, emits } => {
                write!(f, "rule {rule} must emit exactly once, found {emits} emit actions")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn builder_and_validation() {
        let m = MboxModel::new("test-fw")
            .state("established", KeyExpr::Flow)
            .acl("acl", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))])
            .rule(
                Guard::StateContains { state: "established".into(), key: KeyExpr::Flow },
                vec![Action::Forward],
            )
            .rule(
                Guard::AclMatch("acl".into()),
                vec![Action::Insert("established".into()), Action::Forward],
            )
            .rule(Guard::True, vec![Action::Drop]);
        assert!(m.validate().is_ok());
        assert!(m.is_flow_keyed());
    }

    #[test]
    fn unknown_state_rejected() {
        let m = MboxModel::new("bad").rule(
            Guard::StateContains { state: "nope".into(), key: KeyExpr::Flow },
            vec![Action::Forward],
        );
        assert!(matches!(m.validate(), Err(ModelError::UnknownState { .. })));
    }

    #[test]
    fn unknown_acl_rejected() {
        let m = MboxModel::new("bad").rule(Guard::AclMatch("ghost".into()), vec![Action::Drop]);
        assert!(matches!(m.validate(), Err(ModelError::UnknownAcl { .. })));
    }

    #[test]
    fn rules_must_emit_exactly_once() {
        let m = MboxModel::new("bad").rule(Guard::True, vec![Action::HavocTag]);
        assert!(matches!(m.validate(), Err(ModelError::BadEmitCount { emits: 0, .. })));
        let m2 = MboxModel::new("bad2").rule(Guard::True, vec![Action::Forward, Action::Drop]);
        assert!(matches!(m2.validate(), Err(ModelError::BadEmitCount { emits: 2, .. })));
    }

    #[test]
    fn origin_keyed_state_is_not_flow_parallel() {
        let m = MboxModel::new("cache")
            .state("cache", KeyExpr::Origin)
            .rule(
                Guard::StateContains { state: "cache".into(), key: KeyExpr::DstAddr },
                vec![Action::RespondFromState("cache".into())],
            )
            .rule(Guard::True, vec![Action::Forward]);
        assert!(m.validate().is_ok());
        assert!(!m.is_flow_keyed());
    }

    #[test]
    fn exclusive_oracle_groups_validated() {
        let ok = MboxModel::new("appfw")
            .oracle("skype?")
            .oracle("jabber?")
            .exclusive(["skype?", "jabber?"]);
        assert!(ok.validate().is_ok());
        let bad = MboxModel::new("appfw").oracle("skype?").exclusive(["skype?", "ghost?"]);
        assert!(bad.validate().is_err());
    }
}
