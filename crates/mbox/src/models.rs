//! The standard middlebox model library.
//!
//! These are the middlebox types the paper's evaluation deploys (stateful
//! firewalls, load balancers, IDPSes, content caches, NATs, scrubbers) plus
//! the other common types its §3.4 discusses (application firewalls, WAN
//! optimizers). Previous studies found only a limited number of middlebox
//! types in production networks, so — as the paper argues — a small
//! reusable library covers most deployments.

use crate::{Action, FailMode, Guard, KeyExpr, MboxModel, Parallelism};
use vmn_net::{Address, Prefix};

/// The paper's Listing 1: a learning (stateful) firewall.
///
/// Forwards packets of established flows; otherwise consults the ACL of
/// allowed (source, destination) prefix pairs, recording allowed flows as
/// established. Fails closed. Flow-parallel.
pub fn learning_firewall(name: &str, acl: Vec<(Prefix, Prefix)>) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Closed)
        .parallelism(Parallelism::FlowParallel)
        .state("established", KeyExpr::Flow)
        .acl("acl", acl)
        .rule(
            Guard::StateContains { state: "established".into(), key: KeyExpr::Flow },
            vec![Action::Forward],
        )
        .rule(
            Guard::AclMatch("acl".into()),
            vec![Action::Insert("established".into()), Action::Forward],
        )
        .rule(Guard::True, vec![Action::Drop])
}

/// A stateless ACL firewall: forwards (src, dst) pairs on the allow list,
/// drops everything else.
pub fn acl_firewall(name: &str, allow: Vec<(Prefix, Prefix)>) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Closed)
        .parallelism(Parallelism::FlowParallel)
        .acl("allow", allow)
        .rule(Guard::AclMatch("allow".into()), vec![Action::Forward])
        .rule(Guard::True, vec![Action::Drop])
}

/// The paper's Listing 2: a NAT translating `internal` sources to
/// `external`.
///
/// Outbound packets have their source rewritten to `external` with a fresh
/// port, and the (rewritten) flow recorded; inbound packets to `external`
/// are restored to the remembered internal endpoint, and anything else to
/// `external` is dropped. Traffic that is neither outbound nor addressed
/// to the external address is dropped too — internal addresses are not
/// reachable through a NAT. Fails closed (explicit failure branch in the
/// paper's listing). Flow-parallel.
pub fn nat(name: &str, internal: Prefix, external: Address) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Closed)
        .parallelism(Parallelism::FlowParallel)
        .state("active", KeyExpr::Flow)
        // Inbound: restore the destination for known flows…
        .rule(
            Guard::and([
                Guard::DstIs(external),
                Guard::StateContains { state: "active".into(), key: KeyExpr::Flow },
            ]),
            vec![Action::RestoreDstFromState("active".into()), Action::Forward],
        )
        // …and drop unsolicited traffic to the external address.
        .rule(Guard::DstIs(external), vec![Action::Drop])
        // Outbound: rewrite source and remember the mapping.
        .rule(
            Guard::SrcIn(internal),
            vec![
                Action::RewriteSrc(external),
                Action::RewriteSrcPortFresh,
                Action::Insert("active".into()),
                Action::Forward,
            ],
        )
        // Everything else (traffic aimed directly at internal addresses)
        // is dropped: the internal network is hidden.
        .rule(Guard::True, vec![Action::Drop])
}

/// A load balancer exposing `vip` and spreading connections over
/// `backends`.
///
/// The choice of backend is nondeterministic: the verifier considers every
/// possible assignment (over-approximating any concrete hashing scheme),
/// the simulator picks one. Flow-parallel.
pub fn load_balancer(name: &str, vip: Address, backends: Vec<Address>) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Closed)
        .parallelism(Parallelism::FlowParallel)
        .rule(Guard::DstIs(vip), vec![Action::RewriteDstOneOf(backends), Action::Forward])
        .rule(Guard::True, vec![Action::Forward])
}

/// An intrusion detection *and prevention* system: drops packets the
/// `malicious?` oracle flags, forwards the rest.
///
/// Per the paper (§4.1), IDSes can be treated as flow-parallel in VMN
/// without losing verification fidelity.
pub fn idps(name: &str) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Open)
        .parallelism(Parallelism::FlowParallel)
        .oracle("malicious?")
        .rule(Guard::Oracle("malicious?".into()), vec![Action::Drop])
        .rule(Guard::True, vec![Action::Forward])
}

/// A passive IDS that only monitors (always forwards). Rerouting of
/// suspect prefixes toward a scrubber is a *routing* decision in the ISP
/// scenario (§5.3.3), so the box itself is pass-through.
pub fn ids_monitor(name: &str) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Open)
        .parallelism(Parallelism::FlowParallel)
        .rule(Guard::True, vec![Action::Forward])
}

/// A scrubbing box: discards traffic the `attack?` oracle identifies and
/// forwards the remainder to the intended destination (§5.3.3).
pub fn scrubber(name: &str) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Closed)
        .parallelism(Parallelism::FlowParallel)
        .oracle("attack?")
        .rule(Guard::Oracle("attack?".into()), vec![Action::Drop])
        .rule(Guard::True, vec![Action::Forward])
}

/// A content cache in front of servers in `servers`.
///
/// * Responses from the servers are recorded (keyed by data origin) and
///   forwarded to the requesting client.
/// * Requests whose origin is cached are answered directly from the cache
///   — the cached copy retains the original origin, which is what makes
///   cache-induced data-isolation violations expressible (§5.2).
/// * `deny` lists (client-prefix, origin-prefix) pairs the cache must not
///   serve — the ACL feature "supported by most open source and
///   commercial caches" that §5.2's misconfigurations delete.
///
/// Origin-agnostic: the cache's behaviour does not depend on which client
/// warmed it.
pub fn content_cache(
    name: &str,
    servers: impl IntoIterator<Item = Prefix>,
    deny: Vec<(Prefix, Prefix)>,
) -> MboxModel {
    let from_servers = Guard::or(servers.into_iter().map(Guard::SrcIn).collect::<Vec<_>>());
    MboxModel::new(name)
        .fail_mode(FailMode::Open)
        .parallelism(Parallelism::OriginAgnostic)
        .state("cache", KeyExpr::Origin)
        .acl("deny", deny)
        // Server responses populate the cache.
        .rule(from_servers, vec![Action::Insert("cache".into()), Action::Forward])
        // Denied (client, origin) requests are refused outright.
        .rule(Guard::AclMatch("deny".into()), vec![Action::Drop])
        // Cache hit: answer from the cache.
        .rule(
            Guard::StateContains { state: "cache".into(), key: KeyExpr::DstAddr },
            vec![Action::RespondFromState("cache".into())],
        )
        // Miss: pass the request to the server.
        .rule(Guard::True, vec![Action::Forward])
}

/// An application-level firewall dropping the listed application classes
/// (e.g. `skype?`). All application oracles are declared mutually
/// exclusive — the §3.4 example of an output constraint.
pub fn application_firewall(name: &str, deny_apps: &[&str], all_apps: &[&str]) -> MboxModel {
    let mut m =
        MboxModel::new(name).fail_mode(FailMode::Closed).parallelism(Parallelism::FlowParallel);
    for app in all_apps {
        m = m.oracle(*app);
    }
    m = m.exclusive(all_apps.iter().copied());
    for app in deny_apps {
        assert!(all_apps.contains(app), "denied app {app:?} must be declared");
        m = m.rule(Guard::Oracle((*app).to_string()), vec![Action::Drop]);
    }
    m.rule(Guard::True, vec![Action::Forward])
}

/// A WAN optimizer / compression proxy: payloads are transformed, which
/// the paper models as replacement with a fresh value.
pub fn wan_optimizer(name: &str) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Open)
        .parallelism(Parallelism::FlowParallel)
        .rule(Guard::True, vec![Action::HavocTag, Action::Forward])
}

/// A plain gateway/router modelled as a pass-through middlebox (used when
/// a pipeline position matters but the box adds no policy).
pub fn gateway(name: &str) -> MboxModel {
    MboxModel::new(name)
        .fail_mode(FailMode::Open)
        .parallelism(Parallelism::FlowParallel)
        .rule(Guard::True, vec![Action::Forward])
}

/// A per-host virtual-switch firewall in the EC2 security-group style
/// (§5.3.2): default-deny, with explicit allow pairs, stateful so that
/// permitted connections also allow their reverse traffic.
pub fn security_group_firewall(name: &str, allow: Vec<(Prefix, Prefix)>) -> MboxModel {
    // Identical structure to the learning firewall; kept separate so
    // topologies can distinguish the types.
    let mut m = learning_firewall(name, allow);
    m.type_name = name.to_string();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    #[test]
    fn all_models_validate() {
        let models = vec![
            learning_firewall("fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            acl_firewall("acl-fw", vec![(px("10.0.0.0/8"), px("10.0.0.0/8"))]),
            nat("nat", px("10.0.0.0/8"), addr("1.2.3.4")),
            load_balancer("lb", addr("10.0.0.100"), vec![addr("10.0.0.1"), addr("10.0.0.2")]),
            idps("idps"),
            ids_monitor("ids"),
            scrubber("sb"),
            content_cache("cache", [px("10.1.0.0/16")], vec![]),
            application_firewall("appfw", &["skype?"], &["skype?", "jabber?"]),
            wan_optimizer("wanopt"),
            gateway("gw"),
            security_group_firewall("sg", vec![]),
        ];
        for m in models {
            m.validate().unwrap_or_else(|e| panic!("{} failed: {e}", m.type_name));
        }
    }

    #[test]
    fn parallelism_classes_match_paper() {
        assert_eq!(learning_firewall("f", vec![]).parallelism, Parallelism::FlowParallel);
        assert_eq!(
            content_cache("c", [px("10.0.0.0/8")], vec![]).parallelism,
            Parallelism::OriginAgnostic
        );
        assert!(learning_firewall("f", vec![]).is_flow_keyed());
        assert!(!content_cache("c", [px("10.0.0.0/8")], vec![]).is_flow_keyed());
    }

    #[test]
    fn firewall_fails_closed_cache_fails_open() {
        assert_eq!(learning_firewall("f", vec![]).fail_mode, FailMode::Closed);
        assert_eq!(content_cache("c", [px("10.0.0.0/8")], vec![]).fail_mode, FailMode::Open);
        assert_eq!(idps("i").fail_mode, FailMode::Open);
    }

    #[test]
    #[should_panic(expected = "must be declared")]
    fn application_firewall_checks_app_list() {
        application_firewall("appfw", &["ghost?"], &["skype?"]);
    }
}
