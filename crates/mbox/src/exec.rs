//! Concrete (operational) interpreter for middlebox models.
//!
//! The verifier reasons about models symbolically; this interpreter runs
//! them on real headers. It backs the discrete-event simulator and the
//! counterexample replay check: a violation trace found by the SMT
//! encoding must reproduce here, step for step.

use crate::{Action, FailMode, Guard, KeyExpr, MboxModel};
use std::collections::HashMap;
use vmn_net::{Address, FlowId, Header};

/// A concrete state-set key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyVal {
    Flow(FlowId),
    Addr(Address),
    Pair(Address, Address),
}

/// Computes the key of `h` under a key expression.
pub fn key_of(expr: KeyExpr, h: &Header) -> KeyVal {
    match expr {
        KeyExpr::Flow => KeyVal::Flow(h.flow()),
        KeyExpr::SrcAddr => KeyVal::Addr(h.src),
        KeyExpr::DstAddr => KeyVal::Addr(h.dst),
        KeyExpr::Origin => KeyVal::Addr(h.origin),
        KeyExpr::SrcDst => KeyVal::Pair(h.src, h.dst),
    }
}

/// Mutable runtime state of one middlebox instance.
#[derive(Clone, Default, Debug)]
pub struct MboxState {
    /// Per state set: entries of (key at insertion, original pre-rewrite
    /// header of the inserting packet).
    sets: HashMap<String, Vec<(KeyVal, Header)>>,
}

impl MboxState {
    pub fn new() -> MboxState {
        MboxState::default()
    }

    pub fn contains(&self, set: &str, key: KeyVal) -> bool {
        self.sets.get(set).is_some_and(|v| v.iter().any(|(k, _)| *k == key))
    }

    pub fn lookup(&self, set: &str, key: KeyVal) -> Option<&Header> {
        self.sets.get(set)?.iter().find(|(k, _)| *k == key).map(|(_, h)| h)
    }

    pub fn insert(&mut self, set: &str, key: KeyVal, original: Header) {
        self.sets.entry(set.to_string()).or_default().push((key, original));
    }

    pub fn len(&self, set: &str) -> usize {
        self.sets.get(set).map_or(0, Vec::len)
    }

    pub fn is_empty(&self) -> bool {
        self.sets.values().all(Vec::is_empty)
    }

    /// Every (set name, entries) pair — static analysis cross-checks
    /// observed key shapes against inferred parallelism.
    pub fn sets(&self) -> impl Iterator<Item = (&str, &[(KeyVal, Header)])> {
        self.sets.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }
}

/// Source of the nondeterministic choices a model can make.
///
/// The simulator plugs in randomness; counterexample replay plugs in the
/// choices recorded in the SMT model.
pub trait Chooser {
    /// Picks an index in `0..n` (load-balancer backend choice).
    fn pick(&mut self, n: usize) -> usize;
    /// A fresh ephemeral port, never previously returned.
    fn fresh_port(&mut self) -> u16;
    /// A fresh payload tag, never previously returned.
    fn fresh_tag(&mut self) -> u64;
}

/// Deterministic chooser: always picks index 0, allocates ports downward
/// from 65535 and tags upward from a large base.
#[derive(Clone, Debug)]
pub struct SeqChooser {
    next_port: u16,
    next_tag: u64,
}

impl Default for SeqChooser {
    fn default() -> Self {
        SeqChooser { next_port: 65535, next_tag: 1 << 48 }
    }
}

impl SeqChooser {
    pub fn new() -> SeqChooser {
        SeqChooser::default()
    }
}

impl Chooser for SeqChooser {
    fn pick(&mut self, _n: usize) -> usize {
        0
    }

    fn fresh_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.checked_sub(1).expect("ephemeral ports exhausted");
        p
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }
}

/// Chooser that replays a fixed list of picks (for counterexample replay).
#[derive(Clone, Debug, Default)]
pub struct ScriptedChooser {
    pub picks: Vec<usize>,
    pub ports: Vec<u16>,
    pub tags: Vec<u64>,
    pick_i: usize,
    port_i: usize,
    tag_i: usize,
}

impl ScriptedChooser {
    /// Builds a chooser from the scripted values.
    pub fn new(picks: Vec<usize>, ports: Vec<u16>, tags: Vec<u64>) -> ScriptedChooser {
        ScriptedChooser { picks, ports, tags, pick_i: 0, port_i: 0, tag_i: 0 }
    }
}

impl Chooser for ScriptedChooser {
    fn pick(&mut self, n: usize) -> usize {
        let v = self.picks.get(self.pick_i).copied().unwrap_or(0);
        self.pick_i += 1;
        v.min(n.saturating_sub(1))
    }

    fn fresh_port(&mut self) -> u16 {
        let v = self.ports.get(self.port_i).copied().unwrap_or(60000);
        self.port_i += 1;
        v
    }

    fn fresh_tag(&mut self) -> u64 {
        let v = self.tags.get(self.tag_i).copied().unwrap_or(FRESH_FALLBACK);
        self.tag_i += 1;
        v
    }
}

/// Tag returned by [`ScriptedChooser`] when its script runs out.
const FRESH_FALLBACK: u64 = 0xFEED_FACE;

/// Result of processing one packet through a middlebox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// Index of the rule that fired (`None` when failed-closed dropped the
    /// packet or no rule matched).
    pub matched_rule: Option<usize>,
    /// The packet the box emitted, if any.
    pub emitted: Option<Header>,
}

impl ProcessOutcome {
    fn dropped() -> ProcessOutcome {
        ProcessOutcome { matched_rule: None, emitted: None }
    }
}

/// Evaluates a guard against the current header and state.
pub fn eval_guard<O>(
    model: &MboxModel,
    state: &MboxState,
    guard: &Guard,
    h: &Header,
    oracle: &mut O,
) -> bool
where
    O: FnMut(&str, &Header) -> bool,
{
    match guard {
        Guard::True => true,
        Guard::Not(g) => !eval_guard(model, state, g, h, oracle),
        Guard::And(gs) => gs.iter().all(|g| eval_guard(model, state, g, h, oracle)),
        Guard::Or(gs) => gs.iter().any(|g| eval_guard(model, state, g, h, oracle)),
        Guard::SrcIn(p) => p.contains(h.src),
        Guard::DstIn(p) => p.contains(h.dst),
        Guard::SrcIs(a) => h.src == *a,
        Guard::DstIs(a) => h.dst == *a,
        Guard::SrcPortIs(p) => h.src_port == *p,
        Guard::DstPortIs(p) => h.dst_port == *p,
        Guard::ProtoIs(p) => h.proto == *p,
        Guard::OriginIn(p) => p.contains(h.origin),
        Guard::OriginIs(a) => h.origin == *a,
        Guard::AclMatch(name) => model
            .acl_pairs(name)
            .expect("validated model")
            .iter()
            .any(|(sp, dp)| sp.contains(h.src) && dp.contains(h.dst)),
        Guard::StateContains { state: set, key } => state.contains(set, key_of(*key, h)),
        Guard::Oracle(name) => oracle(name, h),
    }
}

/// Processes one packet through a middlebox model.
///
/// `failed` is whether the box is currently failed (the fail-mode
/// annotation then decides the behaviour without consulting rules).
pub fn process<O>(
    model: &MboxModel,
    state: &mut MboxState,
    failed: bool,
    input: Header,
    oracle: &mut O,
    chooser: &mut dyn Chooser,
) -> ProcessOutcome
where
    O: FnMut(&str, &Header) -> bool,
{
    if failed {
        return match model.fail_mode {
            FailMode::Closed => ProcessOutcome::dropped(),
            FailMode::Open => ProcessOutcome { matched_rule: None, emitted: Some(input) },
        };
    }
    let matched =
        model.rules.iter().position(|r| eval_guard(model, state, &r.guard, &input, oracle));
    let Some(idx) = matched else {
        return ProcessOutcome::dropped();
    };
    let mut cur = input;
    let mut emitted = None;
    for action in &model.rules[idx].actions {
        match action {
            Action::Forward => emitted = Some(cur),
            Action::Drop => emitted = None,
            Action::Insert(set) => {
                let decl = model.state_decl(set).expect("validated model");
                let key = key_of(decl.key, &cur);
                state.insert(set, key, input);
            }
            Action::RewriteSrc(a) => cur.src = *a,
            Action::RewriteDst(a) => cur.dst = *a,
            Action::RewriteDstOneOf(addrs) => {
                assert!(!addrs.is_empty(), "empty backend list");
                cur.dst = addrs[chooser.pick(addrs.len())];
            }
            Action::RewriteSrcPortFresh => cur.src_port = chooser.fresh_port(),
            Action::RestoreDstFromState(set) => {
                // Lookup is by the current packet's flow (NAT reverse
                // traffic shares the flow id of the rewritten outbound).
                if let Some(orig) = state.lookup(set, key_of(KeyExpr::Flow, &cur)) {
                    cur.dst = orig.src;
                    cur.dst_port = orig.src_port;
                }
            }
            Action::RespondFromState(set) => {
                // Lookup is by requested destination address against the
                // set's stored keys (cache: dst of request = data origin).
                if let Some(orig) = state.lookup(set, KeyVal::Addr(cur.dst)).copied() {
                    let response = Header {
                        src: orig.src,
                        dst: cur.src,
                        src_port: cur.dst_port,
                        dst_port: cur.src_port,
                        proto: cur.proto,
                        origin: orig.origin,
                        tag: orig.tag,
                    };
                    emitted = Some(response);
                } else {
                    emitted = None;
                }
            }
            Action::HavocTag => cur.tag = chooser.fresh_tag(),
        }
    }
    ProcessOutcome { matched_rule: Some(idx), emitted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use vmn_net::Prefix;

    fn px(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Address {
        s.parse().unwrap()
    }

    fn no_oracle(_: &str, _: &Header) -> bool {
        false
    }

    #[test]
    fn learning_firewall_hole_punching() {
        let fw = models::learning_firewall("fw", vec![(px("10.0.1.0/24"), px("10.0.2.0/24"))]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let out = Header::tcp(addr("10.0.1.5"), 1000, addr("10.0.2.7"), 80);

        // Unsolicited inbound is dropped.
        let inbound = out.reverse();
        let r = process(&fw, &mut st, false, inbound, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, None);

        // Outbound allowed by ACL punches a hole…
        let r = process(&fw, &mut st, false, out, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(out));
        assert_eq!(st.len("established"), 1);

        // …after which the reverse direction flows.
        let r = process(&fw, &mut st, false, inbound, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(inbound));
        assert_eq!(r.matched_rule, Some(0), "matched the established rule");
    }

    #[test]
    fn firewall_acl_miss_drops_and_learns_nothing() {
        let fw = models::learning_firewall("fw", vec![(px("10.0.1.0/24"), px("10.0.2.0/24"))]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let evil = Header::tcp(addr("10.9.9.9"), 1000, addr("10.0.2.7"), 80);
        let r = process(&fw, &mut st, false, evil, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, None);
        assert!(st.is_empty());
    }

    #[test]
    fn fail_modes() {
        let fw = models::learning_firewall("fw", vec![(px("0.0.0.0/0"), px("0.0.0.0/0"))]);
        let cache = models::content_cache("c", [px("10.1.0.0/16")], vec![]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let h = Header::tcp(addr("10.0.1.5"), 1000, addr("10.0.2.7"), 80);
        // Failed-closed firewall drops even ACL-allowed traffic.
        let r = process(&fw, &mut st, true, h, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, None);
        // Failed-open cache passes traffic through unmodified.
        let r = process(&cache, &mut st, true, h, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(h));
    }

    #[test]
    fn nat_round_trip() {
        let external = addr("1.2.3.4");
        let n = models::nat("nat", px("192.168.0.0/16"), external);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let out = Header::tcp(addr("192.168.0.10"), 5555, addr("8.8.8.8"), 53);

        // Outbound: src rewritten to the external address with fresh port.
        let r = process(&n, &mut st, false, out, &mut no_oracle, &mut ch);
        let sent = r.emitted.expect("forwarded");
        assert_eq!(sent.src, external);
        assert_ne!(sent.src_port, 5555);
        assert_eq!(sent.dst, out.dst);

        // Reply to the external address restores the internal endpoint.
        let reply = sent.reverse();
        let r = process(&n, &mut st, false, reply, &mut no_oracle, &mut ch);
        let restored = r.emitted.expect("restored");
        assert_eq!(restored.dst, addr("192.168.0.10"));
        assert_eq!(restored.dst_port, 5555);
    }

    #[test]
    fn nat_drops_unsolicited_inbound() {
        let external = addr("1.2.3.4");
        let n = models::nat("nat", px("192.168.0.0/16"), external);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let unsolicited = Header::tcp(addr("8.8.8.8"), 53, external, 60001);
        let r = process(&n, &mut st, false, unsolicited, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, None);
    }

    #[test]
    fn load_balancer_rewrites_vip() {
        let vip = addr("10.0.0.100");
        let b1 = addr("10.0.0.1");
        let b2 = addr("10.0.0.2");
        let lb = models::load_balancer("lb", vip, vec![b1, b2]);
        let mut st = MboxState::new();
        let h = Header::tcp(addr("10.9.0.1"), 1234, vip, 80);

        let mut ch = SeqChooser::new(); // picks index 0
        let r = process(&lb, &mut st, false, h, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted.unwrap().dst, b1);

        let mut scripted = ScriptedChooser { picks: vec![1], ..ScriptedChooser::default() };
        let r = process(&lb, &mut st, false, h, &mut no_oracle, &mut scripted);
        assert_eq!(r.emitted.unwrap().dst, b2);

        // Non-VIP traffic passes untouched.
        let other = Header::tcp(addr("10.9.0.1"), 1234, addr("10.0.0.7"), 80);
        let mut ch = SeqChooser::new();
        let r = process(&lb, &mut st, false, other, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(other));
    }

    #[test]
    fn idps_consults_oracle() {
        let box_ = models::idps("idps");
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let h = Header::tcp(addr("1.1.1.1"), 1, addr("2.2.2.2"), 2);
        let mut bad = |name: &str, _: &Header| name == "malicious?";
        let r = process(&box_, &mut st, false, h, &mut bad, &mut ch);
        assert_eq!(r.emitted, None);
        let mut good = |_: &str, _: &Header| false;
        let r = process(&box_, &mut st, false, h, &mut good, &mut ch);
        assert_eq!(r.emitted, Some(h));
    }

    #[test]
    fn cache_miss_then_hit() {
        let servers = px("10.1.0.0/16");
        let cache = models::content_cache("cache", [servers], vec![]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let server = addr("10.1.0.5");
        let client = addr("10.2.0.9");

        // Miss: request forwarded to the server.
        let request = Header::tcp(client, 4000, server, 80);
        let r = process(&cache, &mut st, false, request, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(request));

        // Server response populates the cache.
        let response = Header { origin: server, tag: 77, ..request.reverse() };
        let r = process(&cache, &mut st, false, response, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, Some(response));
        assert_eq!(st.len("cache"), 1);

        // Second client hits: served from cache with the cached origin.
        let client2 = addr("10.3.0.1");
        let request2 = Header::tcp(client2, 4001, server, 80);
        let r = process(&cache, &mut st, false, request2, &mut no_oracle, &mut ch);
        let served = r.emitted.expect("cache hit");
        assert_eq!(served.dst, client2);
        assert_eq!(served.origin, server, "cached data keeps its origin");
        assert_eq!(served.tag, 77, "cached payload identity preserved");
    }

    #[test]
    fn cache_deny_acl_blocks_clients() {
        let servers = px("10.1.0.0/16");
        let deny = vec![(px("10.3.0.0/16"), px("10.1.0.0/16"))];
        let cache = models::content_cache("cache", [servers], deny);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let server = addr("10.1.0.5");

        // Warm the cache via an allowed client.
        let ok_req = Header::tcp(addr("10.2.0.9"), 4000, server, 80);
        process(&cache, &mut st, false, ok_req, &mut no_oracle, &mut ch);
        let resp = Header { origin: server, tag: 9, ..ok_req.reverse() };
        process(&cache, &mut st, false, resp, &mut no_oracle, &mut ch);

        // Denied client gets nothing, despite the content being cached.
        let denied = Header::tcp(addr("10.3.0.1"), 4001, server, 80);
        let r = process(&cache, &mut st, false, denied, &mut no_oracle, &mut ch);
        assert_eq!(r.emitted, None, "deny ACL must win over cache hits");
    }

    #[test]
    fn wan_optimizer_havocs_tag() {
        let w = models::wan_optimizer("w");
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let h = Header { tag: 42, ..Header::tcp(addr("1.1.1.1"), 1, addr("2.2.2.2"), 2) };
        let r = process(&w, &mut st, false, h, &mut no_oracle, &mut ch);
        let out = r.emitted.unwrap();
        assert_ne!(out.tag, 42, "payload identity must be havoced");
        assert_eq!(out.src, h.src);
    }

    #[test]
    fn application_firewall_drops_denied_apps() {
        let fw = models::application_firewall("appfw", &["skype?"], &["skype?", "jabber?"]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let h = Header::tcp(addr("1.1.1.1"), 1, addr("2.2.2.2"), 2);
        let mut is_skype = |name: &str, _: &Header| name == "skype?";
        let r = process(&fw, &mut st, false, h, &mut is_skype, &mut ch);
        assert_eq!(r.emitted, None);
        let mut is_jabber = |name: &str, _: &Header| name == "jabber?";
        let r = process(&fw, &mut st, false, h, &mut is_jabber, &mut ch);
        assert_eq!(r.emitted, Some(h));
    }
}
