//! Property-based tests for middlebox models and their concrete
//! interpreter.

use proptest::prelude::*;
use vmn_mbox::exec::{process, MboxState, SeqChooser};
use vmn_mbox::models;
use vmn_net::{Address, Header, Prefix};

fn arb_header() -> impl Strategy<Value = Header> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>())
        .prop_map(|(s, d, sp, dp)| Header::tcp(Address(s), sp, Address(d), dp))
}

fn no_oracle(_: &str, _: &Header) -> bool {
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The learning firewall never forwards a packet whose flow was not
    /// established and whose (src, dst) is not ACL-allowed.
    #[test]
    fn firewall_default_denies(h in arb_header()) {
        let acl = vec![(
            "10.0.0.0/8".parse::<Prefix>().unwrap(),
            "192.168.0.0/16".parse::<Prefix>().unwrap(),
        )];
        let fw = models::learning_firewall("fw", acl.clone());
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let out = process(&fw, &mut st, false, h, &mut no_oracle, &mut ch);
        let allowed = acl.iter().any(|(sp, dp)| sp.contains(h.src) && dp.contains(h.dst));
        prop_assert_eq!(out.emitted.is_some(), allowed);
        // Forwarded packets are unmodified by a firewall.
        if let Some(e) = out.emitted {
            prop_assert_eq!(e, h);
        }
    }

    /// Once a flow is established, both directions pass forever
    /// (monotonicity of firewall state).
    #[test]
    fn firewall_state_is_monotone(h in arb_header()) {
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        let fw = models::learning_firewall("fw", vec![(all, all)]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let first = process(&fw, &mut st, false, h, &mut no_oracle, &mut ch);
        prop_assert!(first.emitted.is_some());
        // Reverse direction now passes via the established rule.
        let rev = process(&fw, &mut st, false, h.reverse(), &mut no_oracle, &mut ch);
        prop_assert_eq!(rev.emitted, Some(h.reverse()));
        prop_assert_eq!(rev.matched_rule, Some(0), "must hit the established rule");
        // And again (state never shrinks).
        let again = process(&fw, &mut st, false, h, &mut no_oracle, &mut ch);
        prop_assert!(again.emitted.is_some());
    }

    /// NAT round-trip: any outbound packet's reply is restored exactly to
    /// the original internal endpoint.
    #[test]
    fn nat_roundtrip_restores_endpoint(sp in any::<u16>(), dst in any::<u32>(), dp in any::<u16>(), host in any::<u16>()) {
        let internal: Prefix = "192.168.0.0/16".parse().unwrap();
        let external = Address(0x0101_0101);
        let dst = Address(dst);
        prop_assume!(!internal.contains(dst) && dst != external);
        let n = models::nat("nat", internal, external);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let src = Address(0xC0A8_0000 | host as u32);
        let out = Header::tcp(src, sp, dst, dp);
        let sent = process(&n, &mut st, false, out, &mut no_oracle, &mut ch)
            .emitted.expect("outbound forwarded");
        prop_assert_eq!(sent.src, external);
        prop_assert!(sent.src_port >= 32768 || sp >= 32768,
            "fresh ports come from the ephemeral range");
        let back = process(&n, &mut st, false, sent.reverse(), &mut no_oracle, &mut ch)
            .emitted.expect("reply restored");
        prop_assert_eq!(back.dst, src);
        prop_assert_eq!(back.dst_port, sp);
    }

    /// The NAT never exposes internal addresses: any packet it emits
    /// toward the outside carries the external source.
    #[test]
    fn nat_never_leaks_internal_sources(h in arb_header()) {
        let internal: Prefix = "192.168.0.0/16".parse().unwrap();
        let external = Address(0x0101_0101);
        let n = models::nat("nat", internal, external);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        if let Some(e) = process(&n, &mut st, false, h, &mut no_oracle, &mut ch).emitted {
            prop_assert!(!internal.contains(e.src), "emitted src {} is internal", e.src);
        }
    }

    /// Cache coherence: a cache hit returns exactly the tag and origin of
    /// some previously observed response for that destination.
    #[test]
    fn cache_serves_only_observed_content(reqs in prop::collection::vec((any::<u32>(), any::<u16>()), 1..6), tag in any::<u64>()) {
        let servers: Prefix = "10.1.0.0/16".parse().unwrap();
        let cache = models::content_cache("cache", [servers], vec![]);
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        let server = Address(0x0A01_0005);
        // Warm: one response from the server.
        let warm_req = Header::tcp(Address(0x0B00_0001), 1000, server, 80);
        let resp = Header { origin: server, tag, ..warm_req.reverse() };
        process(&cache, &mut st, false, resp, &mut no_oracle, &mut ch);
        // Any client asking for that server gets the same content back.
        for (c, p) in reqs {
            let client = Address(0x0B00_0000 | (c & 0xFFFF));
            prop_assume!(!servers.contains(client));
            let req = Header::tcp(client, p, server, 80);
            let out = process(&cache, &mut st, false, req, &mut no_oracle, &mut ch)
                .emitted.expect("hit");
            prop_assert_eq!(out.origin, server);
            prop_assert_eq!(out.tag, tag);
            prop_assert_eq!(out.dst, client);
        }
    }

    /// Fail-closed boxes drop everything when failed; fail-open boxes are
    /// the identity.
    #[test]
    fn fail_mode_semantics(h in arb_header()) {
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        let closed = models::learning_firewall("fw", vec![(all, all)]);
        let open = models::wan_optimizer("wan");
        let mut st = MboxState::new();
        let mut ch = SeqChooser::new();
        prop_assert_eq!(process(&closed, &mut st, true, h, &mut no_oracle, &mut ch).emitted, None);
        prop_assert_eq!(process(&open, &mut st, true, h, &mut no_oracle, &mut ch).emitted, Some(h));
    }
}
