//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.8 API its code actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the tests and benches rely on.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u16..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
