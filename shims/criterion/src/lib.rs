//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark runs `sample_size`
//! timed samples (after one warm-up call) and reports min / median / max
//! wall-clock time per iteration as plain text. Benches must be declared
//! with `harness = false`, exactly as with real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group (`name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things usable as a benchmark identifier in `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, durations: Vec::new() };
    f(&mut b);
    let mut d = b.durations;
    if d.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    d.sort();
    println!(
        "{name:<48} min {:>12}  med {:>12}  max {:>12}  ({} samples)",
        fmt_duration(d[0]),
        fmt_duration(d[d.len() / 2]),
        fmt_duration(d[d.len() - 1]),
        d.len(),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    // Keeps the `&mut Criterion` borrow alive for the group's lifetime,
    // matching real criterion's API shape.
    _criterion: core::marker::PhantomData<&'a mut Criterion>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point, constructed by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("--- {name} ---");
        BenchmarkGroup { name, _criterion: core::marker::PhantomData, sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` may
            // pass `--test-threads` etc. None of the flags change what
            // this shim can do, so they are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }
}
