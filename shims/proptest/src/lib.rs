//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, [`collection::vec`], `any::<T>()`, tuple and integer-range
//! strategies, and the `proptest!` / `prop_assert*` / `prop_oneof!` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left in the assertion message; it is not minimised.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly on re-run.
//! * Integer `any::<T>()` biases ~1/8 of samples toward the boundary
//!   values `0`, `1`, `MAX` to keep edge-case coverage comparable.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Deterministic generator used by all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// FNV-1a, used to derive per-test seeds from the test's name.
    pub fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Mirror of `proptest::test_runner::Config` (as `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no value tree and
    /// no shrinking: a strategy simply produces a value from an RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Recursive strategies. `depth` bounds nesting; the size and
        /// branching hints are accepted for signature compatibility but
        /// unused (generation is bounded by construction).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: no value satisfied {:?} in 1000 draws", self.reason)
        }
    }

    /// Uniform choice between strategies of a common value type
    /// (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// `Just(v)` — always produces a clone of `v`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the canonical strategy for a type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias ~1/8 of draws to boundary values for edge
                    // coverage (proptest's value trees shrink toward
                    // these; we sample them directly instead).
                    if rng.below(8) == 0 {
                        match rng.below(3) {
                            0 => 0 as $t,
                            1 => 1 as $t,
                            _ => <$t>::MAX,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec`] (mirrors proptest's `SizeRange` inputs).
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size range is empty");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed =
                    $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    // A closure so `prop_assume!` can skip the case with
                    // `return`; assertion failures panic through it.
                    let __case = || -> () { $body };
                    __case();
                }
            }
        )*
    };
}

/// Panics (failing the case) unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn maps_and_tuples(v in prop::collection::vec((any::<u8>(), 0u8..4).prop_map(|(a, b)| a as u16 + b as u16), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_skips(n in any::<u32>()) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Clone, Debug)]
        enum E {
            #[allow(dead_code)]
            Leaf(u8),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> u32 {
            match e {
                E::Leaf(_) => 0,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..4).prop_map(E::Leaf).prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| E::Pair(Box::new(e.clone()), Box::new(e))),
                (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::test_runner::TestRng::new(42);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion must sometimes nest");
        assert!(max_depth <= 3, "recursion depth is bounded");
    }
}
