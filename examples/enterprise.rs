//! §5.3.1 walkthrough: the enterprise network of Figure 6 — verify the
//! per-subnet-kind policies and show that slice size stays constant as
//! the network grows.
//!
//! Run with: `cargo run --release --example enterprise`

use vmn::{Verifier, VerifyOptions};
use vmn_scenarios::enterprise::{Enterprise, EnterpriseParams, SubnetKind};

fn main() {
    println!("== Per-kind invariants on a 6-subnet network ==");
    let e = Enterprise::build(EnterpriseParams { subnets: 6, hosts_per_subnet: 2 });
    let opts = VerifyOptions { policy_hint: Some(e.policy_hint()), ..Default::default() };
    let v = Verifier::new(&e.net, opts).unwrap();
    for (kind, inv) in e.invariants() {
        let rep = v.verify(&inv).unwrap();
        let meaning = match kind {
            SubnetKind::Public => "reachable from the internet (isolation violated = good)",
            SubnetKind::Private => "flow isolated (holds = good)",
            SubnetKind::Quarantined => "node isolated (holds = good)",
        };
        println!(
            "  {kind:?}: {} — {meaning} [{:?}, slice {} nodes]",
            if rep.verdict.holds() { "HOLDS" } else { "VIOLATED" },
            rep.elapsed,
            rep.encoded_nodes,
        );
    }

    println!("== Slice size vs network size (Figure 7's point) ==");
    for subnets in [3usize, 15, 30] {
        let e = Enterprise::build(EnterpriseParams { subnets, hosts_per_subnet: 2 });
        let opts = VerifyOptions { policy_hint: Some(e.policy_hint()), ..Default::default() };
        let v = Verifier::new(&e.net, opts).unwrap();
        let rep = v.verify(&e.invariant_for(SubnetKind::Private)).unwrap();
        println!(
            "  network size {:>3} (hosts+mboxes): slice {} nodes, verified in {:?}",
            e.size(),
            rep.encoded_nodes,
            rep.elapsed
        );
    }
}
