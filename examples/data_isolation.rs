//! §5.2 walkthrough: data isolation with content caches. A shared
//! transparent cache serves cached responses without consulting the
//! firewall; its per-group deny ACL is all that protects private data.
//! Deleting the ACL leaks cached private data across policy groups.
//!
//! Run with: `cargo run --release --example data_isolation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::{Verdict, Verifier, VerifyOptions};
use vmn_scenarios::data_isolation::{DataIsolation, DataIsolationParams};

fn main() {
    let params = DataIsolationParams { policy_groups: 4, clients_per_group: 1 };

    println!("== Correctly configured caches ==");
    let d = DataIsolation::build(params.clone());
    let opts = VerifyOptions { policy_hint: Some(d.policy_hint()), ..Default::default() };
    let v = Verifier::new(&d.net, opts.clone()).unwrap();
    let rep = v.verify(&d.private_isolation(0, 1)).unwrap();
    println!(
        "  group 0 private data vs group 1 client: {} [{:?}, slice {} nodes]",
        if rep.verdict.holds() { "HOLDS" } else { "VIOLATED" },
        rep.elapsed,
        rep.encoded_nodes
    );

    println!("== After deleting a cache ACL ==");
    let mut d = DataIsolation::build(params);
    let mut rng = StdRng::seed_from_u64(42);
    let victims = d.inject_cache_misconfig(&mut rng, 1);
    let g = victims[0];
    let v = Verifier::new(&d.net, opts).unwrap();
    let inv = d.private_isolation(g, (g + 1) % 4);
    let rep = v.verify(&inv).unwrap();
    match &rep.verdict {
        Verdict::Violated { trace, .. } => {
            println!("  {inv}: VIOLATED — the cache serves the private data:");
            print!("{}", trace.render(&d.net));
        }
        Verdict::Holds => println!("  {inv}: unexpectedly holds"),
    }
}
