//! §5.3.2 walkthrough: EC2-style security groups in a multi-tenant
//! datacenter — verify the three Figure-8 invariant families and show
//! symmetry collapsing the per-tenant invariant set.
//!
//! Run with: `cargo run --release --example multi_tenant`

use vmn::{Verifier, VerifyOptions};
use vmn_scenarios::multi_tenant::{MultiTenant, MultiTenantParams};

fn main() {
    let m = MultiTenant::build(MultiTenantParams { tenants: 4, vms_per_group: 3 });
    let opts = VerifyOptions { policy_hint: Some(m.policy_hint()), ..Default::default() };
    let v = Verifier::new(&m.net, opts).unwrap();

    println!("== The three security-group invariant families ==");
    for (name, inv, expect_holds) in [
        ("Priv-Priv (cross-tenant private → private)", m.priv_priv(0, 1), true),
        ("Pub-Priv  (cross-tenant public → private)", m.pub_priv(0, 1), true),
        ("Priv-Pub  (cross-tenant private → public)", m.priv_pub(0, 1), false),
    ] {
        let rep = v.verify(&inv).unwrap();
        println!(
            "  {name}: {} (expected {}) [{:?}]",
            if rep.verdict.holds() { "HOLDS" } else { "VIOLATED" },
            if expect_holds { "HOLDS" } else { "VIOLATED" },
            rep.elapsed
        );
    }

    println!("== Symmetry across tenants ==");
    let invs = m.invariants();
    let reports = v.verify_all(&invs, 4).unwrap();
    let direct = reports.iter().filter(|r| !r.inherited).count();
    println!(
        "  {} invariants over {} tenants -> {} solver runs ({} verdicts inherited by symmetry)",
        invs.len(),
        m.params.tenants,
        direct,
        reports.len() - direct
    );
    assert!(reports.iter().enumerate().all(|(i, r)| {
        // Every third invariant (Priv-Pub) is the violated one.
        (i % 3 == 2) != r.verdict.holds()
    }));
    println!("  all verdicts as expected");
}
