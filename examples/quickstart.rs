//! Quickstart: build a tiny firewalled network, verify two invariants,
//! and print a counterexample trace for the violated one.
//!
//! Run with: `cargo run --release --example quickstart`

use vmn::{Invariant, Network, Verdict, Verifier, VerifyOptions};
use vmn_mbox::models;
use vmn_net::{FailureScenario, Prefix, RoutingConfig, Rule, Topology};

fn main() {
    // Topology: outside --- sw --- inside, with a stateful firewall
    // hanging off the switch.
    let mut topo = Topology::new();
    let outside = topo.add_host("outside", "8.8.8.8".parse().unwrap());
    let inside = topo.add_host("inside", "10.0.0.5".parse().unwrap());
    let sw = topo.add_switch("sw");
    let fw = topo.add_middlebox("fw", "stateful-firewall", vec![]);
    topo.add_link(outside, sw);
    topo.add_link(inside, sw);
    topo.add_link(fw, sw);

    // Routing: host routes plus steering rules pushing all traffic
    // through the firewall, in both directions.
    let mut rc = RoutingConfig::new();
    rc.host_routes(&topo);
    let mut tables = rc.build(&topo, &FailureScenario::none());
    let all: Prefix = "0.0.0.0/0".parse().unwrap();
    tables.add_rule(sw, Rule::from_neighbor(all, outside, fw).with_priority(10));
    tables.add_rule(sw, Rule::from_neighbor(all, inside, fw).with_priority(10));

    // The firewall lets inside-initiated flows through (hole punching)
    // and drops everything else.
    let mut net = Network::new(topo, tables);
    net.set_model(
        fw,
        models::learning_firewall("stateful-firewall", vec![("10.0.0.0/8".parse().unwrap(), all)]),
    );

    let verifier = Verifier::new(&net, VerifyOptions::default()).expect("valid network");

    // 1. Flow isolation: outside can never *initiate* contact — holds.
    let flow_iso = Invariant::FlowIsolation { src: outside, dst: inside };
    let report = verifier.verify(&flow_iso).expect("verification runs");
    println!(
        "{flow_iso}: {} ({} nodes encoded, {} steps, {:?})",
        if report.verdict.holds() { "HOLDS" } else { "VIOLATED" },
        report.encoded_nodes,
        report.steps,
        report.elapsed
    );

    // 2. Node isolation: no packet from outside at all — violated,
    //    because inside can punch a hole and invite a reply.
    let node_iso = Invariant::NodeIsolation { src: outside, dst: inside };
    let report = verifier.verify(&node_iso).expect("verification runs");
    match &report.verdict {
        Verdict::Holds => println!("{node_iso}: HOLDS"),
        Verdict::Violated { trace, .. } => {
            println!("{node_iso}: VIOLATED — witness schedule:");
            print!("{}", trace.render(&net));
            // The trace replays on the concrete simulator:
            let receptions = trace.replay(&net, &FailureScenario::none()).unwrap();
            println!("replayed concretely: inside observed {} reception(s)", receptions.len());
        }
    }
}
