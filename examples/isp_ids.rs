//! §5.3.3 walkthrough: an ISP with per-peering-point IDS + firewall and a
//! shared scrubbing box. Shows that the correct configuration keeps
//! private subnets isolated while the "scrubbed traffic bypasses the
//! firewalls" misconfiguration is caught.
//!
//! Run with: `cargo run --release --example isp_ids`

use vmn::{Verdict, Verifier, VerifyOptions};
use vmn_scenarios::isp::{Isp, IspParams};

fn run(label: &str, scrubber_behind_firewall: bool) {
    let isp = Isp::build(IspParams {
        peering_points: 3,
        subnets: 6,
        scrubber_behind_firewall,
        attacked_subnet: 1, // a private subnet is under attack
    });
    let opts = VerifyOptions { policy_hint: Some(isp.policy_hint()), ..Default::default() };
    let v = Verifier::new(&isp.net, opts).unwrap();
    println!("== {label} ==");
    // Private subnet 1 is the rerouted (attacked) prefix.
    let inv = isp.invariant_for(1, 1);
    let rep = v.verify(&inv).unwrap();
    match &rep.verdict {
        Verdict::Holds => println!("  attacked private subnet: flow isolation HOLDS"),
        Verdict::Violated { trace, .. } => {
            println!("  attacked private subnet: VIOLATED — witness:");
            print!("{}", trace.render(&isp.net));
        }
    }
    // Quarantined subnet 2 must stay unreachable either way.
    let rep = v.verify(&isp.invariant_for(2, 0)).unwrap();
    println!(
        "  quarantined subnet: {}",
        if rep.verdict.holds() { "isolation HOLDS" } else { "VIOLATED" }
    );
    // Public subnet 0 stays reachable either way.
    let rep = v.verify(&isp.invariant_for(0, 0)).unwrap();
    println!(
        "  public subnet: {}",
        if rep.verdict.holds() { "unreachable (!)" } else { "reachable as intended" }
    );
}

fn main() {
    run("Correct configuration (scrubber behind a firewall)", true);
    run("Misconfigured (scrubbed traffic bypasses the firewalls)", false);
}
