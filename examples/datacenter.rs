//! §5.1 walkthrough: detect the three classes of datacenter
//! misconfiguration (incorrect firewall rules, misconfigured backup
//! firewalls, routing that bypasses the IDPS on failover).
//!
//! Run with: `cargo run --release --example datacenter`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmn::{Verdict, Verifier, VerifyOptions};
use vmn_scenarios::datacenter::{Datacenter, DatacenterParams};

fn params() -> DatacenterParams {
    DatacenterParams {
        racks: 10,
        hosts_per_rack: 4,
        policy_groups: 5,
        redundant: true,
        with_failures: true,
    }
}

fn opts(dc: &Datacenter) -> VerifyOptions {
    VerifyOptions { policy_hint: Some(dc.policy_hint()), ..Default::default() }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);

    // --- Scenario 1: incorrect firewall rules -------------------------
    let mut dc = Datacenter::build(params());
    let pairs = dc.inject_rule_misconfig(&mut rng, 2);
    let v = Verifier::new(&dc.net, opts(&dc)).unwrap();
    println!("== Rules misconfiguration ==");
    for &(a, b) in &pairs {
        let rep = v.verify(&dc.pair_isolation(a, b)).unwrap();
        println!(
            "  group {a} -> group {b}: {} in {:?} (slice: {} nodes)",
            verdict(&rep.verdict),
            rep.elapsed,
            rep.encoded_nodes
        );
    }
    // An unaffected pair still holds.
    let clean = v.verify(&dc.pair_isolation(2, 0)).unwrap();
    println!("  control pair 2 -> 0: {} in {:?}", verdict(&clean.verdict), clean.elapsed);

    // --- Scenario 2: misconfigured redundant firewall ------------------
    let mut dc = Datacenter::build(params());
    let pairs = dc.inject_redundancy_misconfig(&mut rng, 1);
    let v = Verifier::new(&dc.net, opts(&dc)).unwrap();
    println!("== Redundancy misconfiguration ==");
    let (a, b) = pairs[0];
    let rep = v.verify(&dc.pair_isolation(a, b)).unwrap();
    match &rep.verdict {
        Verdict::Violated { scenario, .. } => println!(
            "  group {a} -> group {b}: VIOLATED, but only when {:?} fail(s)",
            scenario.failed_nodes
        ),
        Verdict::Holds => println!("  group {a} -> group {b}: unexpectedly holds"),
    }

    // --- Scenario 3: routing around the IDPS on failover ---------------
    let mut dc = Datacenter::build(params());
    dc.inject_traversal_misconfig();
    let v = Verifier::new(&dc.net, opts(&dc)).unwrap();
    println!("== Traversal misconfiguration ==");
    let inv = dc.traversal_invariants().remove(0);
    let rep = v.verify(&inv).unwrap();
    match &rep.verdict {
        Verdict::Violated { scenario, .. } => println!(
            "  {inv}: VIOLATED when {:?} fail(s) — traffic bypasses intrusion detection",
            scenario.failed_nodes
        ),
        Verdict::Holds => println!("  {inv}: unexpectedly holds"),
    }
}

fn verdict(v: &Verdict) -> &'static str {
    if v.holds() {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}
