//! Workspace umbrella crate.
//!
//! Exists to host the top-level integration tests (`tests/`) and runnable
//! examples (`examples/`); the library surface simply re-exports the
//! member crates so `cargo doc` has a single entry point.

pub use vmn;
pub use vmn_mbox;
pub use vmn_net;
pub use vmn_scenarios;
pub use vmn_sim;
